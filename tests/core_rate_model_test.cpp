// Heterogeneous rate models and restricted assignment (docs/heterogeneity.md):
//
//  - RateModel construction rejects empty reachable sets loudly;
//  - Instance::threshold(u, r) scales with rate(u, r) and is 0 on
//    unreachable pairs, so all-threshold-0 users simply never satisfy;
//  - the engine refuses restricted instances for protocols that did not opt
//    in, and reports churn that strands a user (every reachable resource
//    dead) instead of parking the user on a rate-0 pair;
//  - snapshot and instance-io round-trips preserve each rate-model form;
//  - the determinism contract extends to heterogeneous instances: matrix and
//    bipartite runs hash identically across {1,2,4,8} threads × dense/active;
//  - uniform instances reproduce the pre-redesign golden hashes, so the
//    Instance/RateModel API redesign is a strict extension.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/generators.hpp"
#include "core/io/instance_io.hpp"
#include "core/protocols/registry.hpp"
#include "core/rate_model.hpp"
#include "core/snapshot.hpp"
#include "core/weighted/weighted_instance.hpp"
#include "net/generators.hpp"
#include "net/graph.hpp"

using namespace qoslb;

namespace {

std::string thrown_message(const std::function<void()>& body) {
  try {
    body();
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return "";
}

/// 2-user / 2-resource matrix instance where user 1's rates are too small to
/// ever satisfy: threshold(1, r) == ⌊0.1 · 1 / 1.0⌋ == 0 on both resources.
Instance tiny_threshold0_instance() {
  return Instance({1.0, 1.0}, {0.5, 1.0},
                  RateModel::matrix(2, 2, {1.0, 1.0, 0.1, 0.1}));
}

}  // namespace

TEST(RateModel, MatrixRejectsEmptyReachableSet) {
  const std::string message = thrown_message([] {
    RateModel::matrix(2, 2, {1.0, 0.5, 0.0, 0.0});
  });
  EXPECT_NE(message.find("user 1 has an empty reachable set"),
            std::string::npos)
      << message;
}

TEST(RateModel, BipartiteRejectsUserWithoutEdges) {
  const std::string message = thrown_message([] {
    RateModel::bipartite(2, 2, {{0, 0, 1.0}, {0, 1, 0.5}});
  });
  EXPECT_NE(message.find("user 1 has an empty reachable set"),
            std::string::npos)
      << message;
}

TEST(RateModel, ThresholdScalesWithRateAndZeroMeansUnreachable) {
  // 8 users (thresholds clamp to n, so keep n above every expected value),
  // requirement 1/4: user 0 at rate 1 on the capacity-1 resource gets
  // ⌊1·1/0.25⌋ = 4, and its rate-0.5 on the capacity-2 resource also gives
  // ⌊0.5·2/0.25⌋ = 4; user 1's full rate there gives 8.
  std::vector<double> rates(8 * 2, 1.0);
  rates[0 * 2 + 1] = 0.5;
  const Instance matrix({1.0, 2.0}, std::vector<double>(8, 0.25),
                        RateModel::matrix(8, 2, std::move(rates)));
  EXPECT_EQ(matrix.threshold(0, 0), 4);
  EXPECT_EQ(matrix.threshold(0, 1), 4);
  EXPECT_EQ(matrix.threshold(1, 1), 8);
  EXPECT_FALSE(matrix.restricted());

  // Bipartite with no (0, 1) edge: rate 0, threshold 0, restricted.
  std::vector<RateEdge> edges = {{0, 0, 1.0}};
  for (UserId u = 1; u < 8; ++u)
    for (ResourceId r = 0; r < 2; ++r) edges.push_back({u, r, 1.0});
  const Instance graph({1.0, 1.0}, std::vector<double>(8, 0.25),
                       RateModel::bipartite(8, 2, std::move(edges)));
  EXPECT_EQ(graph.threshold(0, 0), 4);
  EXPECT_DOUBLE_EQ(graph.rate(0, 1), 0.0);
  EXPECT_EQ(graph.threshold(0, 1), 0);
  EXPECT_TRUE(graph.restricted());
  ASSERT_EQ(graph.reachable(0).size(), 1u);
  EXPECT_EQ(graph.reachable(0)[0], 0u);
}

TEST(RateModel, AllThreshold0UserRunsWithoutCrashAndStaysUnsatisfied) {
  const Instance instance = tiny_threshold0_instance();
  State state = State::round_robin(instance);
  ProtocolSpec spec;
  spec.kind = "uniform";
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 50;
  Xoshiro256 rng(99);
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  EXPECT_FALSE(state.satisfied(1));
  EXPECT_LT(result.final_satisfied, instance.num_users());
  state.check_invariants();
}

TEST(RateModel, EngineRejectsRestrictedInstanceForNonOptedInProtocol) {
  // "cached" is registered /*restricted=*/false: its probe cache samples the
  // whole live list and would migrate users onto rate-0 pairs.
  Xoshiro256 gen_rng(5);
  const Instance instance = make_clustered_bipartite(64, 16, 4, 1, 0.2, gen_rng);
  ASSERT_TRUE(instance.restricted());
  State state = State::random(instance, gen_rng);
  ProtocolSpec spec;
  spec.kind = "cached";
  const auto protocol = make_protocol(spec);
  Xoshiro256 rng(99);
  const std::string message = thrown_message([&] {
    Engine().run(*protocol, state, rng);
  });
  EXPECT_NE(message.find("does not support restricted-assignment instances"),
            std::string::npos)
      << message;
}

TEST(RateModel, ChurnEvictingOnlyReachableResourceReportsStrandedUser) {
  // User 0 reaches only resource 0; everyone else reaches everything. A
  // churn failure of resource 0 leaves user 0 nowhere to go.
  std::vector<RateEdge> edges = {{0, 0, 1.0}};
  for (UserId u = 1; u < 8; ++u)
    for (ResourceId r = 0; r < 3; ++r) edges.push_back({u, r, 1.0});
  const Instance instance(std::vector<double>(3, 1.0),
                          std::vector<double>(8, 0.1),
                          RateModel::bipartite(8, 3, std::move(edges)));
  Xoshiro256 start_rng(11);
  State state = State::random(instance, start_rng);
  ProtocolSpec spec;
  spec.kind = "uniform";
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 50;
  config.churn.fail(1, 0);
  Xoshiro256 rng(99);
  const std::string message = thrown_message([&] {
    Engine(config).run(*protocol, state, rng);
  });
  EXPECT_NE(message.find("churn stranded user 0"), std::string::npos)
      << message;
  EXPECT_NE(message.find("every reachable resource is dead"),
            std::string::npos)
      << message;
}

TEST(RateModel, SnapshotRoundTripsEveryForm) {
  const RateModel forms[] = {
      RateModel::uniform(),
      RateModel::matrix(2, 3, {1.0, 0.5, 0.25, 1.0, 1.0, 1.0}),
      RateModel::bipartite(2, 3, {{0, 0, 1.0}, {0, 2, 0.5}, {1, 1, 0.75}}),
  };
  for (const RateModel& form : forms) {
    SnapshotV1 snapshot;
    snapshot.protocol = "uniform";
    snapshot.next_round = 7;
    snapshot.master_seed = 123;
    snapshot.capacities = {1.0, 1.0, 2.0};
    snapshot.requirements = {0.5, 0.25};
    snapshot.rate_model = form;
    snapshot.assignment = {0, 1};
    snapshot.live = {1, 1, 1};

    std::stringstream io;
    write_snapshot(io, snapshot);
    const SnapshotV1 restored = read_snapshot(io);
    EXPECT_EQ(restored.rate_model.kind(), form.kind());
    const Instance instance = restored.make_instance();
    for (UserId u = 0; u < 2; ++u)
      for (ResourceId r = 0; r < 3; ++r)
        EXPECT_DOUBLE_EQ(instance.rate(u, r), form.rate(u, r))
            << "kind=" << static_cast<int>(form.kind()) << " u=" << u
            << " r=" << r;
  }
}

TEST(RateModel, InstanceIoRoundTripsEveryForm) {
  Xoshiro256 gen_rng(3);
  const Instance instances[] = {
      make_uniform_feasible(16, 4, 0.1, 1.5, gen_rng),
      make_zipf_rates(16, 4, 0.1, 1.1, gen_rng),
      make_clustered_bipartite(16, 4, 2, 1, 0.1, gen_rng),
  };
  for (const Instance& instance : instances) {
    std::stringstream io;
    write_instance(io, instance);
    const Instance restored = read_instance(io);
    ASSERT_EQ(restored.num_users(), instance.num_users());
    ASSERT_EQ(restored.num_resources(), instance.num_resources());
    EXPECT_EQ(restored.rate_model().kind(), instance.rate_model().kind());
    EXPECT_EQ(restored.restricted(), instance.restricted());
    for (UserId u = 0; u < instance.num_users(); ++u)
      for (ResourceId r = 0; r < instance.num_resources(); ++r) {
        EXPECT_DOUBLE_EQ(restored.rate(u, r), instance.rate(u, r));
        EXPECT_EQ(restored.threshold(u, r), instance.threshold(u, r));
      }
  }
}

namespace {

/// Worst-case restricted-safe start: every user on its first reachable
/// resource (resource 0 when unrestricted).
State adversarial_start(const Instance& instance) {
  std::vector<ResourceId> assignment(instance.num_users(), 0);
  if (instance.restricted())
    for (UserId u = 0; u < assignment.size(); ++u)
      assignment[u] = instance.reachable(u).front();
  return State(instance, std::move(assignment));
}

struct RunOutcome {
  std::uint64_t hash = 0;
  std::uint64_t rounds = 0;
};

RunOutcome run_hetero(const Instance& instance, const ProtocolSpec& spec,
                      EngineMode mode, std::size_t threads) {
  State state = adversarial_start(instance);
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 300;
  config.seed = 7;
  config.threads = threads;
  config.mode = mode;
  Xoshiro256 rng(99);
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  state.check_invariants();
  return {state_hash(state), result.rounds};
}

}  // namespace

// Acceptance: same hashes across {1,2,4,8} threads × dense/active for EVERY
// restricted-assignment-compatible protocol, on a matrix and a bipartite
// instance. Non-active/sequential protocols fall back deterministically.
TEST(RateModel, HeterogeneousRunsAreThreadAndModeInvariant) {
  const Graph ring = make_ring(32);
  std::vector<ProtocolSpec> specs;
  for (const ProtocolInfo& info : protocol_registry()) {
    if (!info.restricted) continue;
    ProtocolSpec spec;
    spec.kind = info.name;
    spec.lambda = 0.5;
    spec.graph = &ring;
    specs.push_back(spec);
  }
  ASSERT_GE(specs.size(), 8u);  // seq-br(-rr), uniform, adaptive, admission,
                                // nbr-uniform, nbr-admission, berenbrink

  Xoshiro256 gen_rng(21);
  const Instance instances[] = {
      make_zipf_rates(2000, 32, 0.1, 1.1, gen_rng),
      make_clustered_bipartite(2000, 32, 8, 2, 0.1, gen_rng),
  };
  for (const Instance& instance : instances) {
    for (const ProtocolSpec& spec : specs) {
      const RunOutcome reference =
          run_hetero(instance, spec, EngineMode::kDense, 1);
      for (const EngineMode mode : {EngineMode::kDense, EngineMode::kActive}) {
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
          const RunOutcome outcome = run_hetero(instance, spec, mode, threads);
          EXPECT_EQ(outcome.hash, reference.hash)
              << spec.kind
              << " kind=" << static_cast<int>(instance.rate_model().kind())
              << " mode=" << (mode == EngineMode::kDense ? "dense" : "active")
              << " threads=" << threads;
          EXPECT_EQ(outcome.rounds, reference.rounds) << spec.kind;
        }
      }
    }
  }
}

TEST(RateModel, WeightedInstanceAppliesSpeedsToThresholds) {
  // 3 jobs × 2 nodes, node 1 serves job 0 at speed 0.5: its threshold there
  // halves, everyone else keeps ⌊s_r/q_u⌋.
  const WeightedInstance cluster(
      {8.0, 8.0}, {1.0, 1.0, 1.0}, {1, 2, 4},
      RateModel::matrix(3, 2, {1.0, 0.5, 1.0, 1.0, 1.0, 1.0}));
  EXPECT_EQ(cluster.threshold(0, 0), 7);  // clamped to total_weight
  EXPECT_EQ(cluster.threshold(0, 1), 4);
  EXPECT_EQ(cluster.threshold(1, 1), 7);
  EXPECT_DOUBLE_EQ(cluster.rate(0, 1), 0.5);
}

TEST(RateModel, WeightedInstanceRejectsRestrictedRates) {
  const std::string message = thrown_message([] {
    WeightedInstance({1.0, 1.0}, {0.5, 0.5}, {1, 1},
                     RateModel::matrix(2, 2, {1.0, 0.0, 1.0, 1.0}));
  });
  EXPECT_NE(message.find("strictly positive rates"), std::string::npos)
      << message;
}

TEST(RateModel, UniformInstancesReproducePreRedesignGoldenHashes) {
  // Captured on the pre-RateModel build (PR 6 head): the redesigned API must
  // leave every uniform-rate realization bit-identical.
  struct Golden {
    const char* kind;
    std::uint64_t hash;
    std::uint64_t rounds;
  };
  const Golden goldens[] = {
      {"uniform", 0x69c0ce1d5a5e6fc5ULL, 2},
      {"adaptive", 0xadd5f7ff4335ba4bULL, 2},
      {"admission", 0x1c08a4dca769f23dULL, 2},
      {"seq-br", 0x3b30342ba44aa10bULL, 77},
      {"seq-br-rr", 0x25d76e835147a3a9ULL, 78},
      {"berenbrink", 0xf105449203e7f958ULL, 17},
      {"cached", 0x09b34f95b0018200ULL, 2},
  };
  for (const Golden& golden : goldens) {
    Xoshiro256 gen_rng(42);
    const Instance instance = make_uniform_feasible(5000, 64, 0.05, 1.5, gen_rng);
    State state = State::random(instance, gen_rng);
    ProtocolSpec spec;
    spec.kind = golden.kind;
    const auto protocol = make_protocol(spec);
    EngineConfig config;
    config.max_rounds = 200;
    config.seed = 7;
    config.threads = 1;
    Xoshiro256 run_rng(99);
    const EngineResult result = Engine(config).run(*protocol, state, run_rng);
    EXPECT_EQ(state_hash(state), golden.hash) << golden.kind;
    EXPECT_EQ(result.rounds, golden.rounds) << golden.kind;
  }
}

TEST(RateModel, UniformChurnRunReproducesPreRedesignGoldenHash) {
  Xoshiro256 gen_rng(42);
  const Instance instance = make_uniform_feasible(5000, 64, 0.05, 1.5, gen_rng);
  State state = State::random(instance, gen_rng);
  ProtocolSpec spec;
  spec.kind = "uniform";
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 200;
  config.seed = 7;
  config.threads = 4;
  config.mode = EngineMode::kActive;
  config.churn.fail(5, 3);
  config.churn.recover(40, 3);
  Xoshiro256 run_rng(99);
  const EngineResult result = Engine(config).run(*protocol, state, run_rng);
  EXPECT_EQ(state_hash(state), 0x26e846e89cc9e658ULL);
  EXPECT_EQ(result.rounds, 41u);
}
