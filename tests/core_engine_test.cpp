// qoslb::Engine — the unified run facade (PR 2) and the active-set round
// engine (PR 3).
//
// Covers the contracts the engine stands on:
//   1. mode/thread invariance: dense and active-set modes, every tested
//      thread count, and the kSequential policy all produce bit-identical
//      assignments, trajectories, and counters, because randomness is keyed
//      by (seed, round, user) and commits merge in shard order;
//   2. step_users splitting equivalence: slicing a round's user list into
//      shards that share one RoundRng is exactly the default step() — each
//      user's draws come from its own substream;
//   3. facade regressions: Engine::run_async_admission matches the PR 1
//      fault-tolerant DES results, and sharded execution falls back to the
//      sequential driver for protocols without step_users;
//   4. the (seed, round, user) substream golden values are frozen.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "net/generators.hpp"
#include "qoslb.hpp"
#include "sim/parallel_round_engine.hpp"

namespace qoslb {
namespace {

Instance test_instance(std::size_t n, std::size_t m, std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  return make_uniform_feasible(n, m, 0.5, 1.5, rng);
}

std::vector<ResourceId> assignment_of(const State& state) {
  std::vector<ResourceId> assignment(state.num_users());
  for (UserId u = 0; u < state.num_users(); ++u)
    assignment[u] = state.resource_of(u);
  return assignment;
}

void expect_counters_eq(const Counters& a, const Counters& b) {
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.migrate_requests, b.migrate_requests);
  EXPECT_EQ(a.grants, b.grants);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.rounds, b.rounds);
}

// ---- 1. mode and thread-count invariance ----

struct ShardedCase {
  std::string kind;
  double lambda;
};

const std::vector<ShardedCase>& sharded_cases() {
  static const std::vector<ShardedCase> kCases = {
      {"uniform", 0.5},      {"adaptive", 1.0},      {"admission", 1.0},
      {"nbr-uniform", 0.5},  {"nbr-admission", 1.0}, {"berenbrink", 1.0}};
  return kCases;
}

std::string case_name(const ::testing::TestParamInfo<ShardedCase>& info) {
  std::string name = info.param.kind;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

class ModeThreadInvariance : public ::testing::TestWithParam<ShardedCase> {};

TEST_P(ModeThreadInvariance, DenseActiveAndEveryThreadCountMatch) {
  const ShardedCase& param = GetParam();
  const Instance instance = test_instance(2000, 32);
  const Graph ring = make_ring(32);

  struct RunCase {
    EngineMode mode;
    RoundExecution execution;
    std::size_t threads;
  };
  std::vector<RunCase> cases;
  cases.push_back({EngineMode::kDense, RoundExecution::kAuto, 1});  // reference
  for (const std::size_t threads : {2u, 4u, 8u})
    cases.push_back({EngineMode::kDense, RoundExecution::kAuto, threads});
  for (const std::size_t threads : {1u, 2u, 4u, 8u})
    cases.push_back({EngineMode::kActive, RoundExecution::kAuto, threads});
  cases.push_back({EngineMode::kDense, RoundExecution::kSequential, 8});

  std::vector<ResourceId> reference;
  EngineResult reference_result;
  bool have_reference = false;
  for (const RunCase& run : cases) {
    State state = State::all_on(instance, 0);
    ProtocolSpec spec;
    spec.kind = param.kind;
    spec.lambda = param.lambda;
    spec.graph = &ring;
    const auto protocol = make_protocol(spec);
    EngineConfig config;
    config.mode = run.mode;
    config.execution = run.execution;
    config.threads = run.threads;
    config.shard_size = 128;
    config.max_rounds = 400;
    config.record_trajectory = true;
    Xoshiro256 rng(77);
    const EngineResult result = Engine(config).run(*protocol, state, rng);
    state.check_invariants();  // incremental index == recompute

    if (!have_reference) {
      reference = assignment_of(state);
      reference_result = result;
      have_reference = true;
      continue;
    }
    const std::string label =
        (run.mode == EngineMode::kActive ? "active" : "dense") +
        std::string(" threads=") + std::to_string(run.threads);
    EXPECT_EQ(assignment_of(state), reference) << label;
    EXPECT_EQ(result.rounds, reference_result.rounds) << label;
    EXPECT_EQ(result.final_satisfied, reference_result.final_satisfied)
        << label;
    EXPECT_EQ(result.converged, reference_result.converged) << label;
    EXPECT_EQ(result.unsatisfied_trajectory,
              reference_result.unsatisfied_trajectory)
        << label;
    expect_counters_eq(result.counters, reference_result.counters);
  }
}

INSTANTIATE_TEST_SUITE_P(AllShardedProtocols, ModeThreadInvariance,
                         ::testing::ValuesIn(sharded_cases()), case_name);

// ---- 2. step_users splitting is exactly step() ----

class StepUsersEquivalence : public ::testing::TestWithParam<ShardedCase> {};

TEST_P(StepUsersEquivalence, SplitUserListsMatchFullStep) {
  const ShardedCase& param = GetParam();
  const Instance instance = test_instance(600, 16, 3);
  const Graph ring = make_ring(16);
  ProtocolSpec spec;
  spec.kind = param.kind;
  spec.lambda = param.lambda;
  spec.graph = &ring;
  const auto whole = make_protocol(spec);
  const auto split = make_protocol(spec);
  ASSERT_TRUE(whole->supports_step_users());

  State state_whole = State::all_on(instance, 0);
  State state_split = State::all_on(instance, 0);
  Xoshiro256 rng_whole(11), rng_split(11);
  Counters counters_whole, counters_split;
  const UserId n = static_cast<UserId>(instance.num_users());
  const UserId cut = n / 3;

  std::vector<UserId> users(n);
  std::iota(users.begin(), users.end(), UserId{0});

  for (int round = 0; round < 12; ++round) {
    whole->step(state_whole, rng_whole, counters_whole);

    // Two shards of the user list under the same round key draw the exact
    // same per-user substreams as the full-range default step().
    const std::vector<int> snapshot = state_split.loads();
    std::vector<MigrationBuffer> shards(2);
    const RoundRng streams(rng_split(), 0);
    split->step_users(state_split, snapshot, users.data(), cut, shards[0],
                      streams, counters_split);
    split->step_users(state_split, snapshot, users.data() + cut, n - cut,
                      shards[1], streams, counters_split);
    split->commit_round(state_split, shards, counters_split);

    ASSERT_EQ(assignment_of(state_split), assignment_of(state_whole))
        << param.kind << " diverged at round " << round;
  }
  expect_counters_eq(counters_split, counters_whole);
}

INSTANTIATE_TEST_SUITE_P(AllShardedProtocols, StepUsersEquivalence,
                         ::testing::ValuesIn(sharded_cases()), case_name);

// ---- 3. facade regressions ----

/// Same fault cocktail as core_async_test's PR 1 golden scenario.
EngineConfig faulty_config(std::uint64_t seed) {
  EngineConfig config;
  config.seed = seed;
  config.random_start = false;
  config.faults.drop_all(0.10).dup_all(0.05).crash(/*agent=*/2, 5.0, 150.0);
  return config;
}

TEST(EngineAsync, MatchesFaultTolerantGoldenRun) {
  Xoshiro256 rng(1);
  const Instance instance = make_uniform_feasible(80, 8, 0.5, 1.0, rng);
  const EngineConfig config = faulty_config(7);
  const EngineResult engine_result = Engine(config).run_async_admission(instance);
  const AsyncRunResult direct = run_async_admission(instance, config);

  // PR 1 invariants: the loss-tolerant protocol drives the faulty run to
  // full satisfaction and quiesces.
  EXPECT_TRUE(engine_result.all_satisfied);
  EXPECT_TRUE(engine_result.converged);
  EXPECT_EQ(engine_result.termination, Termination::kQuiesced);
  EXPECT_EQ(engine_result.final_satisfied, 80u);
  EXPECT_GT(engine_result.faults.dropped, 0u);
  EXPECT_GT(engine_result.counters.retries, 0u);

  // And the facade is a faithful view of the DES run.
  EXPECT_EQ(engine_result.final_satisfied, direct.satisfied);
  EXPECT_EQ(engine_result.events, direct.events);
  EXPECT_DOUBLE_EQ(engine_result.virtual_time, direct.virtual_time);
  EXPECT_EQ(engine_result.counters.messages(), direct.counters.messages());
  EXPECT_EQ(engine_result.faults.dropped, direct.faults.dropped);
}

TEST(EngineSharded, FallsBackToSequentialWithoutStepUsers) {
  const Instance instance = test_instance(400, 16, 5);
  ProtocolSpec spec;
  spec.kind = "seq-br";  // no step_users implementation

  EngineConfig sharded;
  sharded.execution = RoundExecution::kSharded;
  sharded.threads = 4;
  State state_sharded = State::all_on(instance, 0);
  Xoshiro256 rng_sharded(21);
  const auto p1 = make_protocol(spec);
  const EngineResult a = Engine(sharded).run(*p1, state_sharded, rng_sharded);
  EXPECT_EQ(a.threads_used, 1u);

  State state_seq = State::all_on(instance, 0);
  Xoshiro256 rng_seq(21);
  const auto p2 = make_protocol(spec);
  const EngineResult b = Engine(EngineConfig{}).run(*p2, state_seq, rng_seq);
  EXPECT_EQ(assignment_of(state_sharded), assignment_of(state_seq));
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(EngineTermination, RoundCapAndConvergedAreDistinguished) {
  const Instance instance = test_instance(400, 16, 5);

  // A barely-damped uniform sampler cannot absorb the all-on-one pile in a
  // single round, so the capped run must report kRoundCap.
  ProtocolSpec slow;
  slow.kind = "uniform";
  slow.lambda = 0.1;
  EngineConfig capped;
  capped.max_rounds = 1;
  State state = State::all_on(instance, 0);
  Xoshiro256 rng(3);
  const auto p1 = make_protocol(slow);
  const EngineResult capped_result = Engine(capped).run(*p1, state, rng);
  EXPECT_FALSE(capped_result.converged);
  EXPECT_EQ(capped_result.termination, Termination::kRoundCap);

  ProtocolSpec fast;
  fast.kind = "admission";
  State state2 = State::all_on(instance, 0);
  Xoshiro256 rng2(3);
  const auto p2 = make_protocol(fast);
  const EngineResult full = Engine(EngineConfig{}).run(*p2, state2, rng2);
  EXPECT_TRUE(full.converged);
  EXPECT_EQ(full.termination, Termination::kConverged);
}

// ---- registry surface ----

TEST(Registry, EveryKindHasInfoAndBuilds) {
  const auto& infos = protocol_registry();
  const auto kinds = protocol_kinds();
  ASSERT_EQ(infos.size(), kinds.size());
  const Graph ring = make_ring(8);
  for (std::size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].name, kinds[i]);
    EXPECT_FALSE(infos[i].description.empty()) << infos[i].name;
    ProtocolSpec spec;
    spec.kind = infos[i].name;
    spec.graph = &ring;
    EXPECT_NE(make_protocol(spec), nullptr) << infos[i].name;
  }
}

TEST(Registry, ActiveSetFlagsMatchTheProtocols) {
  const Graph ring = make_ring(8);
  for (const ProtocolInfo& info : protocol_registry()) {
    ProtocolSpec spec;
    spec.kind = info.name;
    spec.graph = &ring;
    const auto protocol = make_protocol(spec);
    EXPECT_EQ(info.active_set, protocol->active_set_compatible()) << info.name;
    // active_set implies the sharded hooks exist at all.
    if (info.active_set) {
      EXPECT_TRUE(protocol->supports_step_users());
    }
  }
}

TEST(Registry, NewKindsForwardTheirKnobs) {
  ProtocolSpec cached;
  cached.kind = "cached";
  cached.lambda = 0.5;
  cached.ttl = 3;
  EXPECT_EQ(make_protocol(cached)->name(), "cached(lambda=0.5,ttl=3)");

  ProtocolSpec par;
  par.kind = "par-uniform";
  par.lambda = 0.5;
  par.threads = 2;
  const auto protocol = make_protocol(par);
  EXPECT_NE(protocol->name().find("par-uniform"), std::string::npos);
}

// ---- substream scheme ----

// Frozen golden values of the (seed, round, user) keying (PR 3 re-keying).
// If these change, every sharded/active trajectory in the repo changes:
// that is a breaking re-keying and needs a deliberate golden regeneration.
TEST(RoundRng, PerUserStreamGoldenValues) {
  const RoundRng streams(/*master_seed=*/42, /*round=*/0);
  EXPECT_EQ(streams.round_key(), UINT64_C(0xBDD732262FEB6E95));
  PhiloxEngine user7 = streams.user_stream(7);
  EXPECT_EQ(user7(), UINT64_C(0x4C925A257DB22086));
  EXPECT_EQ(user7(), UINT64_C(0x1B9A5AB6CF16A8C3));
  EXPECT_EQ(RoundRng(42, 1).user_stream(7)(), UINT64_C(0x44DBAEE9715E047F));
  EXPECT_EQ(RoundRng(42, 0).user_stream(8)(), UINT64_C(0x8D2E921EAA7768CF));
  EXPECT_EQ(RoundRng(43, 0).user_stream(7)(), UINT64_C(0x672524B1553B9689));
}

TEST(RoundRng, StreamsAreSeekableAndPrivate) {
  const RoundRng streams(7, 3);
  // Re-materializing a user's stream restarts it at position 0: the draw
  // sequence is a pure function of (seed, round, user).
  PhiloxEngine a = streams.user_stream(123);
  const std::uint64_t first = a();
  const std::uint64_t second = a();
  PhiloxEngine b = streams.user_stream(123);
  EXPECT_EQ(b(), first);
  EXPECT_EQ(b(), second);
  // Distinct users draw from decorrelated streams.
  EXPECT_NE(streams.user_stream(124)(), first);
}

TEST(ParallelRoundEngine, SubstreamKeysAreStableAndDistinct) {
  const std::uint64_t base = ParallelRoundEngine::substream_key(42, 0, 0);
  EXPECT_EQ(ParallelRoundEngine::substream_key(42, 0, 0), base);
  EXPECT_NE(ParallelRoundEngine::substream_key(42, 0, 1), base);
  EXPECT_NE(ParallelRoundEngine::substream_key(42, 1, 0), base);
  EXPECT_NE(ParallelRoundEngine::substream_key(43, 0, 0), base);
}

TEST(ParallelRoundEngine, MapReduceSumsEveryItemOnce) {
  for (const std::size_t threads : {1u, 3u}) {
    ParallelRoundEngine::Options options;
    options.threads = threads;
    options.shard_size = 7;
    ParallelRoundEngine engine(options);
    const std::uint64_t total =
        engine.map_reduce(1000, [](std::size_t begin, std::size_t end) {
          std::uint64_t sum = 0;
          for (std::size_t i = begin; i < end; ++i) sum += i;
          return sum;
        });
    EXPECT_EQ(total, 999u * 1000u / 2);
  }
}

}  // namespace
}  // namespace qoslb
