#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace qoslb {
namespace {

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"n", "rounds"});
  csv.cell(16LL).cell(3.5);
  csv.end_row();
  EXPECT_EQ(out.str(), "n,rounds\n16,3.5\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, RowWidthMustMatchHeader) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.cell(1LL);
  EXPECT_THROW(csv.end_row(), std::logic_error);
}

TEST(CsvWriter, HeaderMustComeFirst) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell(1LL);
  csv.end_row();
  EXPECT_THROW(csv.header({"a"}), std::invalid_argument);
}

TEST(CsvWriter, EndRowWithoutCellsThrows) {
  std::ostringstream out;
  CsvWriter csv(out);
  EXPECT_THROW(csv.end_row(), std::invalid_argument);
}

TEST(TablePrinter, AlignsNumericColumnsRight) {
  TablePrinter table({"name", "value"});
  table.cell("alpha").cell(5LL).end_row();
  table.cell("b").cell(12345LL).end_row();
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  // Numeric column right-aligned: " 5" has leading spaces before it.
  EXPECT_NE(text.find("    5"), std::string::npos);
}

TEST(TablePrinter, RowWidthEnforced) {
  TablePrinter table({"a", "b"});
  table.cell("x");
  EXPECT_THROW(table.end_row(), std::invalid_argument);
}

TEST(TablePrinter, TooManyCellsRejected) {
  TablePrinter table({"a"});
  table.cell("x");
  EXPECT_THROW(table.cell("y"), std::invalid_argument);
}

TEST(TablePrinter, CsvExportMatchesRows) {
  TablePrinter table({"k", "v"});
  table.cell("x").cell(1LL).end_row();
  table.cell("y").cell(2LL).end_row();
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "k,v\nx,1\ny,2\n");
}

TEST(TablePrinter, RowCount) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.cell("1").end_row();
  EXPECT_EQ(table.rows(), 1u);
}

}  // namespace
}  // namespace qoslb
