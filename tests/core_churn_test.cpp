#include "core/churn.hpp"

#include <gtest/gtest.h>

#include "core/async/async_protocols.hpp"
#include "core/generators.hpp"
#include "rng/distributions.hpp"
#include "core/protocols/registry.hpp"
#include "core/engine.hpp"
#include "opt/satisfaction.hpp"

namespace qoslb {
namespace {

World make_world(std::uint64_t seed, std::size_t n = 40, std::size_t m = 4) {
  Xoshiro256 rng(seed);
  const Instance inst = make_uniform_feasible(n, m, 0.4, 1.2, rng);
  State state = State::round_robin(inst);
  return snapshot_world(state);
}

TEST(Churn, SnapshotRoundTrips) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(20, 2, 0.3, 1.0, rng);
  State state = State::random(inst, rng);
  const World world = snapshot_world(state);
  ASSERT_EQ(world.instance.num_users(), 20u);
  for (UserId u = 0; u < 20; ++u) {
    EXPECT_DOUBLE_EQ(world.instance.requirement(u), inst.requirement(u));
    EXPECT_EQ(world.assignment[u], state.resource_of(u));
  }
}

TEST(Churn, ReplaceUsersKeepsPopulationSize) {
  World world = make_world(2);
  Xoshiro256 rng(3);
  const World next = replace_users(world, 10, 0.01, 0.02, rng);
  EXPECT_EQ(next.instance.num_users(), world.instance.num_users());
  // Exactly the replaced users changed requirement band.
  std::size_t changed = 0;
  for (UserId u = 0; u < next.instance.num_users(); ++u)
    if (next.instance.requirement(u) <= 0.02) ++changed;
  EXPECT_GE(changed, 10u);
  State state(next.instance, next.assignment);
  state.check_invariants();
}

TEST(Churn, AddUsersGrowsPopulation) {
  World world = make_world(4);
  Xoshiro256 rng(5);
  const World next = add_users(world, 7, 0.05, 0.05, rng, /*placement=*/1);
  EXPECT_EQ(next.instance.num_users(), world.instance.num_users() + 7);
  for (std::size_t i = 0; i < 7; ++i) {
    const UserId u = static_cast<UserId>(world.instance.num_users() + i);
    EXPECT_EQ(next.assignment[u], 1u);
    EXPECT_DOUBLE_EQ(next.instance.requirement(u), 0.05);
  }
}

TEST(Churn, RemoveUsersShrinksPopulation) {
  World world = make_world(6);
  Xoshiro256 rng(7);
  const World next = remove_users(world, 15, rng);
  EXPECT_EQ(next.instance.num_users(), world.instance.num_users() - 15);
  State state(next.instance, next.assignment);
  state.check_invariants();
}

TEST(Churn, RemoveAllRejected) {
  World world = make_world(8);
  Xoshiro256 rng(9);
  EXPECT_THROW(remove_users(world, world.instance.num_users(), rng),
               std::invalid_argument);
}

TEST(Churn, FailResourceRelocatesAndRenumbers) {
  World world = make_world(10, 40, 4);
  Xoshiro256 rng(11);
  const World next = fail_resource(world, 1, rng);
  EXPECT_EQ(next.instance.num_resources(), 3u);
  EXPECT_EQ(next.instance.num_users(), 40u);
  for (const ResourceId r : next.assignment) EXPECT_LT(r, 3u);
  // Users previously on resources 2,3 are now on 1,2 respectively.
  for (UserId u = 0; u < 40; ++u) {
    if (world.assignment[u] >= 2) {
      EXPECT_EQ(next.assignment[u], world.assignment[u] - 1);
    } else if (world.assignment[u] == 0) {
      EXPECT_EQ(next.assignment[u], 0u);
    }
  }
  State state(next.instance, next.assignment);
  state.check_invariants();
}

TEST(Churn, FailResourceWithTwoResourcesLeavesTheSurvivor) {
  // The smallest legal world for a failure: everyone lands on the one
  // survivor and the renumbering maps it to id 0.
  World world = make_world(12, 10, 2);
  Xoshiro256 rng(13);
  const World next = fail_resource(world, 1, rng);
  EXPECT_EQ(next.instance.num_resources(), 1u);
  for (const ResourceId r : next.assignment) EXPECT_EQ(r, 0u);
  State state(next.instance, next.assignment);
  state.check_invariants();
}

TEST(Churn, FailResourcePreservesSurvivorCapacities) {
  World world = make_world(14, 40, 4);
  Xoshiro256 rng(15);
  const World next = fail_resource(world, 2, rng);
  ASSERT_EQ(next.instance.num_resources(), 3u);
  EXPECT_DOUBLE_EQ(next.instance.capacity(0), world.instance.capacity(0));
  EXPECT_DOUBLE_EQ(next.instance.capacity(1), world.instance.capacity(1));
  EXPECT_DOUBLE_EQ(next.instance.capacity(2), world.instance.capacity(3));
}

TEST(Churn, FailEmptyResourceRelocatesNobody) {
  // Failing a resource with no residents only renumbers: ids above the
  // failed one shift down, nobody migrates.
  Xoshiro256 world_rng(22);
  const Instance inst = make_uniform_feasible(12, 4, 0.4, 1.2, world_rng);
  State state = State::all_on(inst, 1);  // resources 0, 2, 3 are empty
  World world = snapshot_world(state);
  Xoshiro256 rng(23);

  const World tail = fail_resource(world, 3, rng);
  for (const ResourceId r : tail.assignment) EXPECT_EQ(r, 1u);

  const World head = fail_resource(world, 0, rng);
  for (const ResourceId r : head.assignment) EXPECT_EQ(r, 0u);
}

TEST(Churn, FailResourceOutOfRangeThrowsChurnError) {
  World world = make_world(16, 10, 3);
  Xoshiro256 rng(17);
  EXPECT_THROW(fail_resource(world, 3, rng), ChurnError);
  EXPECT_THROW(fail_resource(world, 99, rng), ChurnError);
  try {
    fail_resource(world, 99, rng);
    FAIL() << "expected ChurnError";
  } catch (const ChurnError& error) {
    EXPECT_NE(std::string(error.what()).find("out of range"),
              std::string::npos);
  }
}

TEST(Churn, FailOnlyResourceThrowsChurnError) {
  World world = make_world(18, 10, 1);
  Xoshiro256 rng(19);
  EXPECT_THROW(fail_resource(world, 0, rng), ChurnError);
}

TEST(Churn, ChurnErrorIsAnInvalidArgument) {
  // Callers that predate the typed error keep working: ChurnError derives
  // from std::invalid_argument and carries the qoslb churn prefix.
  World world = make_world(20, 10, 1);
  Xoshiro256 rng(21);
  try {
    fail_resource(world, 0, rng);
    FAIL() << "expected ChurnError";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("qoslb churn:"),
              std::string::npos);
  }
}

TEST(Churn, ProtocolRecoversAfterResourceFailure) {
  // End-to-end robustness: converge, fail a resource, converge again.
  Xoshiro256 rng(13);
  const Instance inst = make_uniform_feasible(120, 6, 0.5, 1.0, rng);
  State state = State::random(inst, rng);
  ProtocolSpec spec;
  spec.kind = "admission";
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 50000;
  ASSERT_TRUE(Engine(config).run(*protocol, state, rng).all_satisfied);

  const World failed = fail_resource(snapshot_world(state), 0, rng);
  State recovered(failed.instance, failed.assignment);
  const EngineResult result = Engine(config).run(*protocol, recovered, rng);
  EXPECT_TRUE(result.converged);
  // Slack 0.5 leaves enough headroom that 5 of 6 resources still suffice.
  EXPECT_TRUE(result.all_satisfied);
}

TEST(Churn, FailResourceThenAsyncReconverges) {
  // Robustness end-to-end in the *asynchronous* realization: converge, kill
  // a resource (its users scattered over the survivors), then hand the
  // survivor world to the DES admission protocol and require reconvergence.
  Xoshiro256 rng(19);
  const Instance inst = make_uniform_feasible(120, 6, 0.5, 1.0, rng);
  State state = State::round_robin(inst);
  const World failed = fail_resource(snapshot_world(state), 0, rng);

  EngineConfig config;
  config.seed = 23;
  config.initial_assignment = failed.assignment;
  const AsyncRunResult result = run_async_admission(failed.instance, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.termination, Termination::kQuiesced);
}

TEST(Churn, FailResourceThenAsyncReconvergesUnderMessageFaults) {
  // Same chain, but the re-run additionally fights message loss and
  // duplication — crash + scatter + lossy recovery in one scenario.
  Xoshiro256 rng(29);
  const Instance inst = make_uniform_feasible(120, 6, 0.5, 1.0, rng);
  State state = State::round_robin(inst);
  const World failed = fail_resource(snapshot_world(state), 2, rng);

  EngineConfig config;
  config.seed = 31;
  config.initial_assignment = failed.assignment;
  config.faults.drop_all(0.08).dup_all(0.04);
  const AsyncRunResult result = run_async_admission(failed.instance, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.termination, Termination::kQuiesced);
}

// ---- greedy optimum bound ----

TEST(GreedyBound, NeverExceedsExactOptimum) {
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = static_cast<int>(uniform_int(rng, 1, 10));
    const int m = static_cast<int>(uniform_int(rng, 1, 4));
    std::vector<int> thresholds(n);
    for (auto& t : thresholds) t = static_cast<int>(uniform_int(rng, 0, 6));
    const int exact = max_satisfied_identical(thresholds, m);
    const int greedy = max_satisfied_greedy(thresholds, m);
    EXPECT_LE(greedy, exact) << "trial=" << trial;
    // The bound is usually tight; require it within one dump-resource worth.
    EXPECT_GE(greedy, exact - std::max(1, n / m)) << "trial=" << trial;
  }
}

TEST(GreedyBound, ExactOnFeasibleInstances) {
  EXPECT_EQ(max_satisfied_greedy(std::vector<int>(9, 3), 3), 9);
  EXPECT_EQ(max_satisfied_greedy({4, 4, 4, 4}, 1), 4);
}

TEST(GreedyBound, OverloadedInstances) {
  // 6 users threshold 2, m=2: satisfy 2 on one resource, dump 4 on the other.
  EXPECT_EQ(max_satisfied_greedy(std::vector<int>(6, 2), 2), 2);
  // m=1: either all 6 (impossible, threshold 2) or fewer with no dump room.
  EXPECT_EQ(max_satisfied_greedy(std::vector<int>(6, 2), 1), 0);
}

TEST(GreedyBound, UnsatisfiableUsersIgnoredGracefully) {
  EXPECT_EQ(max_satisfied_greedy({3, 3, 0, 0}, 2), 2);
  EXPECT_EQ(max_satisfied_greedy({}, 3), 0);
}

TEST(GreedyBound, ScalesToLargeInstances) {
  std::vector<int> thresholds(100000);
  for (std::size_t i = 0; i < thresholds.size(); ++i)
    thresholds[i] = static_cast<int>(1 + i % 50);
  const int bound = max_satisfied_greedy(thresholds, 2000);
  EXPECT_GT(bound, 0);
  EXPECT_LE(bound, 100000);
}

}  // namespace
}  // namespace qoslb
