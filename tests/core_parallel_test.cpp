#include "core/parallel/parallel_sampling.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/engine.hpp"

namespace qoslb {
namespace {

std::vector<ResourceId> final_assignment(std::size_t threads, std::uint64_t seed) {
  Xoshiro256 gen_rng(42);
  const Instance instance = make_uniform_feasible(512, 32, 0.2, 1.3, gen_rng);
  State state = State::all_on(instance, 0);
  ParallelUniformSampling protocol(0.5, seed, threads);
  Xoshiro256 unused(1);
  EngineConfig config;
  config.max_rounds = 50000;
  const EngineResult result = Engine(config).run(protocol, state, unused);
  EXPECT_TRUE(result.converged);
  std::vector<ResourceId> assignment(state.num_users());
  for (UserId u = 0; u < state.num_users(); ++u)
    assignment[u] = state.resource_of(u);
  return assignment;
}

class ThreadCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadCount, BitIdenticalToSerialReference) {
  // The whole point of counter-based randomness: every thread count produces
  // exactly the serial execution's assignment.
  const auto serial = final_assignment(1, 99);
  const auto parallel = final_assignment(GetParam(), 99);
  EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCount, ::testing::Values(2u, 3u, 4u, 8u));

TEST(ParallelUniform, DifferentSeedsDiverge) {
  EXPECT_NE(final_assignment(2, 1), final_assignment(2, 2));
}

TEST(ParallelUniform, ConvergesAndSatisfies) {
  Xoshiro256 gen_rng(7);
  const Instance instance = make_uniform_feasible(1024, 64, 0.3, 1.0, gen_rng);
  State state = State::all_on(instance, 0);
  ParallelUniformSampling protocol(0.5, 5, /*threads=*/4);
  Xoshiro256 unused(1);
  EngineConfig config;
  config.max_rounds = 50000;
  const EngineResult result = Engine(config).run(protocol, state, unused);
  EXPECT_TRUE(result.all_satisfied);
  state.check_invariants();
}

TEST(ParallelUniform, ResetRestartsTheRoundCounter) {
  Xoshiro256 gen_rng(11);
  const Instance instance = make_uniform_feasible(128, 8, 0.3, 1.0, gen_rng);
  ParallelUniformSampling protocol(0.5, 3, 2);
  Xoshiro256 unused(1);

  auto run_once = [&] {
    State state = State::all_on(instance, 0);
    Counters counters;
    protocol.reset();
    protocol.step(state, unused, counters);
    return counters.migrations;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ParallelUniform, NameReportsThreads) {
  ParallelUniformSampling serial(0.5, 1, 1);
  EXPECT_EQ(serial.name(), "par-uniform(lambda=0.5,threads=1)");
  EXPECT_EQ(serial.threads(), 1u);
  ParallelUniformSampling pooled(0.5, 1, 3);
  EXPECT_EQ(pooled.threads(), 3u);
}

TEST(ParallelUniform, RejectsBadLambda) {
  EXPECT_THROW(ParallelUniformSampling(0.0, 1, 1), std::invalid_argument);
  EXPECT_THROW(ParallelUniformSampling(1.5, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
