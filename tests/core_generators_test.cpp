#include "core/generators.hpp"

#include <gtest/gtest.h>

#include "core/satisfaction.hpp"
#include "core/state.hpp"
#include "opt/satisfaction.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

std::vector<int> thresholds_of(const Instance& inst) {
  std::vector<int> out(inst.num_users());
  for (UserId u = 0; u < inst.num_users(); ++u) out[u] = inst.threshold(u, 0);
  return out;
}

class UniformFeasibleParams
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(UniformFeasibleParams, IsFeasibleByConstruction) {
  const auto [n, m, slack] = GetParam();
  Xoshiro256 rng(n * 31 + m);
  const Instance inst = make_uniform_feasible(n, m, slack, 1.5, rng);
  EXPECT_EQ(inst.num_users(), n);
  EXPECT_EQ(inst.num_resources(), m);
  EXPECT_TRUE(all_satisfiable(thresholds_of(inst), static_cast<int>(m)));
  // The balanced round-robin assignment must satisfy everyone.
  const State balanced = State::round_robin(inst);
  EXPECT_EQ(balanced.count_satisfied(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UniformFeasibleParams,
    ::testing::Values(std::make_tuple(8, 2, 0.0), std::make_tuple(50, 5, 0.3),
                      std::make_tuple(100, 10, 0.5), std::make_tuple(64, 64, 0.5),
                      std::make_tuple(7, 3, 0.9), std::make_tuple(1, 1, 0.0)));

TEST(UniformFeasible, SlackRaisesThresholds) {
  Xoshiro256 rng(1);
  const Instance loose = make_uniform_feasible(100, 10, 0.8, 1.0, rng);
  const Instance tight = make_uniform_feasible(100, 10, 0.0, 1.0, rng);
  EXPECT_GT(loose.threshold(0, 0), tight.threshold(0, 0));
  // slack 0, heterogeneity 1: threshold exactly the balanced load.
  EXPECT_EQ(tight.threshold(0, 0), 10);
}

TEST(UniformFeasible, RejectsBadParameters) {
  Xoshiro256 rng(1);
  EXPECT_THROW(make_uniform_feasible(0, 2, 0.5, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(make_uniform_feasible(2, 2, 1.0, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(make_uniform_feasible(2, 2, -0.1, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(make_uniform_feasible(2, 2, 0.5, 0.9, rng), std::invalid_argument);
}

TEST(QosClasses, GeometricThresholdsAndFeasibility) {
  const Instance inst = make_qos_classes(/*m=*/6, /*classes=*/3,
                                         /*base_threshold=*/4, /*slack=*/0.25);
  // Classes have thresholds 4, 8, 16; with slack 0.25 groups of 3, 6, 12.
  EXPECT_EQ(inst.num_users(), 2u * (3 + 6 + 12));
  EXPECT_TRUE(all_satisfiable(thresholds_of(inst), 6));
}

TEST(QosClasses, SingleClassReducesToUniform) {
  const Instance inst = make_qos_classes(4, 1, 10, 0.5);
  for (UserId u = 0; u < inst.num_users(); ++u)
    EXPECT_EQ(inst.threshold(u, 0), 10);
}

TEST(Zipf, ThresholdsSkewedTowardEasy) {
  Xoshiro256 rng(5);
  const Instance inst = make_zipf(200, 10, 1.2, rng);
  const auto thresholds = thresholds_of(inst);
  const int top = *std::max_element(thresholds.begin(), thresholds.end());
  int at_top = 0;
  for (const int t : thresholds)
    if (t == top) ++at_top;
  // Rank 0 (the loosest threshold) carries ~46% of the Zipf(1.2) mass.
  EXPECT_GT(at_top, 60);
}

TEST(Overloaded, NotFullySatisfiable) {
  const Instance inst = make_overloaded(40, 4, 2.0);
  EXPECT_FALSE(all_satisfiable(thresholds_of(inst), 4));
  // Threshold = n/(m*overload) = 5.
  EXPECT_EQ(inst.threshold(0, 0), 5);
}

TEST(Overloaded, RejectsNonOverload) {
  EXPECT_THROW(make_overloaded(10, 2, 1.0), std::invalid_argument);
}

TEST(Herding, TwoResourcesTightThreshold) {
  const Instance inst = make_herding(50);
  EXPECT_EQ(inst.num_resources(), 2u);
  EXPECT_EQ(inst.num_users(), 50u);
  for (UserId u = 0; u < 50; ++u) EXPECT_EQ(inst.threshold(u, 0), 30);
  // Feasible: a 25/25 split satisfies everyone.
  EXPECT_TRUE(all_satisfiable(thresholds_of(inst), 2));
}

TEST(RelatedCapacities, PowersOfTwoCapacities) {
  Xoshiro256 rng(7);
  const Instance inst = make_related_capacities(60, 6, 0.3, 3, rng);
  EXPECT_FALSE(inst.identical_capacities());
  EXPECT_DOUBLE_EQ(inst.capacity(0), 1.0);
  EXPECT_DOUBLE_EQ(inst.capacity(1), 2.0);
  EXPECT_DOUBLE_EQ(inst.capacity(2), 4.0);
  EXPECT_DOUBLE_EQ(inst.capacity(3), 1.0);
}

TEST(RelatedCapacities, EveryUserSatisfiableSomewhere) {
  Xoshiro256 rng(9);
  const Instance inst = make_related_capacities(40, 4, 0.2, 2, rng);
  // Requirements are drawn below every resource's per-slot quality at the
  // proportional loads, so each user's threshold is >= 1 everywhere.
  for (UserId u = 0; u < inst.num_users(); ++u)
    for (ResourceId r = 0; r < inst.num_resources(); ++r)
      EXPECT_GE(inst.threshold(u, r), 1) << "u=" << u << " r=" << r;
}

TEST(Generators, DeterministicPerSeed) {
  Xoshiro256 a(42), b(42);
  const Instance ia = make_uniform_feasible(30, 3, 0.4, 2.0, a);
  const Instance ib = make_uniform_feasible(30, 3, 0.4, 2.0, b);
  for (UserId u = 0; u < 30; ++u)
    EXPECT_DOUBLE_EQ(ia.requirement(u), ib.requirement(u));
}

}  // namespace
}  // namespace qoslb
