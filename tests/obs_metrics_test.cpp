// obs::MetricsRegistry and the phase timers — handle semantics, deterministic
// merge order (the metrics analogue of the engine's shard-ordered Counters
// merge), histogram binning, the JSONL golden, and ScopedPhase accounting
// against a virtual clock.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "qoslb.hpp"

namespace qoslb::obs {
namespace {

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip) {
  MetricsRegistry m;
  const CounterHandle c = m.counter("engine/rounds");
  const GaugeHandle g = m.gauge("state/potential");
  const HistogramHandle h = m.histogram("engine/active_set_size", 0.0, 10.0, 5);

  m.add(c);
  m.add(c, 41);
  m.set(g, 2.5);
  m.observe(h, 3.0);
  m.observe(h, 3.5);
  m.observe(h, 9.0);

  EXPECT_EQ(m.counter_value(c), 42u);
  EXPECT_EQ(m.gauge_value(g), 2.5);
  EXPECT_EQ(m.histogram_data(h).total(), 3u);
  EXPECT_EQ(m.histogram_data(h).count(1), 2u);  // [2, 4)
  EXPECT_EQ(m.histogram_data(h).count(4), 1u);  // [8, 10)
  EXPECT_EQ(m.size(), 3u);
}

TEST(MetricsRegistry, RegisteringTwiceReturnsTheSameSlot) {
  MetricsRegistry m;
  const CounterHandle first = m.counter("x");
  m.add(first, 7);
  const CounterHandle again = m.counter("x");
  EXPECT_EQ(first.index, again.index);
  m.add(again, 5);
  EXPECT_EQ(m.counter_value(first), 12u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(MetricsRegistry, InvalidHandlesAreNoOps) {
  MetricsRegistry m;
  CounterHandle c;  // default-constructed == invalid
  GaugeHandle g;
  HistogramHandle h;
  EXPECT_FALSE(c.valid());
  m.add(c, 100);
  m.set(g, 1.0);
  m.observe(h, 1.0);
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.find_counter("anything").valid());
}

TEST(MetricsRegistry, WriteJsonlFollowsRegistrationOrder) {
  MetricsRegistry m;
  m.add(m.counter("b/counter"), 3);
  m.set(m.gauge("a/gauge"), 0.25);
  const HistogramHandle h = m.histogram("c/hist", 0.0, 4.0, 4);
  m.observe(h, 0.5);
  m.observe(h, 0.5);
  m.observe(h, 3.5);
  m.observe(h, -1.0);  // underflow, lands in the first bucket
  m.observe(h, 9.0);   // overflow, lands in the last bucket

  std::ostringstream out;
  m.write_jsonl(out);
  // Registration order, not name order; zero-count buckets omitted.
  EXPECT_EQ(out.str(),
            "{\"metric\":\"b/counter\",\"type\":\"counter\",\"value\":3}\n"
            "{\"metric\":\"a/gauge\",\"type\":\"gauge\",\"value\":0.25}\n"
            "{\"metric\":\"c/hist\",\"type\":\"histogram\",\"total\":5,"
            "\"underflow\":1,\"overflow\":1,\"buckets\":["
            "{\"lo\":0,\"hi\":1,\"count\":3},"
            "{\"lo\":3,\"hi\":4,\"count\":2}]}\n");
}

TEST(MetricsRegistry, MergeAddsCountersAndOverwritesWrittenGauges) {
  MetricsRegistry base;
  base.add(base.counter("shared"), 10);
  base.set(base.gauge("g_written"), 1.0);
  base.set(base.gauge("g_kept"), 5.0);

  MetricsRegistry other;
  other.add(other.counter("shared"), 32);
  other.set(other.gauge("g_written"), 2.0);
  other.gauge("g_kept");  // registered but never set: must not clobber
  other.add(other.counter("only_other"), 1);

  base.merge(other);
  EXPECT_EQ(base.counter_value(base.find_counter("shared")), 42u);
  EXPECT_EQ(base.gauge_value(base.find_gauge("g_written")), 2.0);
  EXPECT_EQ(base.gauge_value(base.find_gauge("g_kept")), 5.0);
  EXPECT_EQ(base.counter_value(base.find_counter("only_other")), 1u);
}

TEST(MetricsRegistry, MergeFoldsHistogramsBucketWise) {
  MetricsRegistry a;
  MetricsRegistry b;
  const HistogramHandle ha = a.histogram("h", 0.0, 10.0, 5);
  const HistogramHandle hb = b.histogram("h", 0.0, 10.0, 5);
  a.observe(ha, 1.0);
  b.observe(hb, 1.5);
  b.observe(hb, 9.0);
  a.merge(b);
  const Histogram& merged = a.histogram_data(ha);
  EXPECT_EQ(merged.total(), 3u);
  EXPECT_EQ(merged.count(0), 2u);
  EXPECT_EQ(merged.count(4), 1u);
}

// Shard registries merged in shard order must yield one deterministic
// output: existing metrics keep the target's order, new ones append in the
// source's registration order.
TEST(MetricsRegistry, MergeOrderIsDeterministic) {
  MetricsRegistry shard0;
  shard0.add(shard0.counter("alpha"), 1);
  shard0.add(shard0.counter("beta"), 1);

  MetricsRegistry shard1;
  shard1.add(shard1.counter("gamma"), 1);  // new — appends after beta
  shard1.add(shard1.counter("alpha"), 1);  // existing — stays first

  MetricsRegistry merged;
  merged.merge(shard0);
  merged.merge(shard1);

  std::ostringstream out;
  merged.write_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"metric\":\"alpha\",\"type\":\"counter\",\"value\":2}\n"
            "{\"metric\":\"beta\",\"type\":\"counter\",\"value\":1}\n"
            "{\"metric\":\"gamma\",\"type\":\"counter\",\"value\":1}\n");
}

// merge is associative: (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) produce bit-identical
// JSONL — counters sum, last-written gauges win, histograms fold bucket-wise
// — which is what lets per-shard registries fold in any grouping as long as
// the shard order itself is fixed.
TEST(MetricsRegistry, MergeIsAssociative) {
  const auto make_shard = [](std::uint64_t salt) {
    MetricsRegistry m;
    m.add(m.counter("engine/rounds"), 10 + salt);
    if (salt != 1) m.set(m.gauge("state/potential"), 2.0 * salt);
    const HistogramHandle h = m.histogram("engine/active_set_size", 0.0, 8.0, 4);
    m.observe(h, static_cast<double>(salt));
    m.observe(h, 100.0);  // overflow mass folds too
    m.add(m.counter("shard/only_" + std::to_string(salt)), salt);
    return m;
  };

  MetricsRegistry left_first;  // (a ⊕ b) ⊕ c
  left_first.merge(make_shard(0));
  left_first.merge(make_shard(1));
  left_first.merge(make_shard(2));

  MetricsRegistry right_first = make_shard(0);  // a ⊕ (b ⊕ c)
  MetricsRegistry tail = make_shard(1);
  tail.merge(make_shard(2));
  right_first.merge(tail);

  std::ostringstream left, right;
  left_first.write_jsonl(left);
  right_first.write_jsonl(right);
  EXPECT_EQ(left.str(), right.str());
  EXPECT_EQ(left_first.counter_value(left_first.find_counter("engine/rounds")),
            33u);
  EXPECT_EQ(
      left_first.histogram_data(
                    left_first.find_histogram("engine/active_set_size"))
          .overflow(),
      3u);
}

TEST(PhaseTimers, AddAndMergeAccumulate) {
  PhaseTimers a;
  a.add(Phase::kStep, 1.5);
  a.add(Phase::kStep, 0.5);
  PhaseTimers b;
  b.add(Phase::kStep, 2.0);
  b.add(Phase::kCommit, 0.25);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a[Phase::kStep].seconds, 4.0);
  EXPECT_EQ(a[Phase::kStep].count, 3u);
  EXPECT_DOUBLE_EQ(a[Phase::kCommit].seconds, 0.25);
  EXPECT_EQ(a[Phase::kCommit].count, 1u);
  EXPECT_EQ(a[Phase::kSatisfactionCheck].count, 0u);
}

TEST(PhaseTimers, ScopedPhaseMeasuresVirtualElapsed) {
  VirtualClock clock;
  PhaseTimers timers;
  clock.set(1.0);
  {
    ScopedPhase phase(&clock, &timers, Phase::kEventDispatch);
    clock.set(3.5);
  }
  EXPECT_DOUBLE_EQ(timers[Phase::kEventDispatch].seconds, 2.5);
  EXPECT_EQ(timers[Phase::kEventDispatch].count, 1u);
}

TEST(PhaseTimers, NullClockMeansNoAccounting) {
  PhaseTimers timers;
  { ScopedPhase phase(nullptr, &timers, Phase::kStep); }
  EXPECT_EQ(timers[Phase::kStep].count, 0u);
  // Null timers must also be safe regardless of the clock.
  VirtualClock clock;
  { ScopedPhase phase(&clock, nullptr, Phase::kStep); }
}

TEST(PhaseTimers, PhaseNamesAreStable) {
  // docs/observability.md and the phase/<name>_seconds gauges key off these.
  EXPECT_STREQ(phase_name(Phase::kStep), "step");
  EXPECT_STREQ(phase_name(Phase::kCommit), "commit");
  EXPECT_STREQ(phase_name(Phase::kSatisfactionCheck), "satisfaction_check");
  EXPECT_STREQ(phase_name(Phase::kTrace), "trace");
  EXPECT_STREQ(phase_name(Phase::kEventDispatch), "event_dispatch");
}

}  // namespace
}  // namespace qoslb::obs
