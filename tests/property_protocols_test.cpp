// Cross-cutting property tests: one TEST_P grid runs every registry protocol
// against every instance family and start, checking the invariants that must
// hold for ANY protocol in this framework:
//   I1  load vector always matches the assignment (State::check_invariants)
//   I2  counter sanity: grants+rejects == requests, grants == migrations for
//       gated protocols; messages() is consistent
//   I3  converged ⇒ the protocol's own stability predicate holds
//   I4  final satisfied count never exceeds the centralized greedy bound's
//       ceiling companion (the exact optimum on small instances)
//   I5  bit-identical reruns under the same seed
//   I6  satisfied users never migrate in a satisfaction protocol's round

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/generators.hpp"
#include "core/protocols/registry.hpp"
#include "core/engine.hpp"
#include "core/satisfaction.hpp"
#include "net/generators.hpp"
#include "opt/satisfaction.hpp"
#include "rng/splitmix64.hpp"

namespace qoslb {
namespace {

struct GridCase {
  const char* family;
  const char* protocol;
  const char* start;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  std::string name = std::string(info.param.family) + "_" +
                     info.param.protocol + "_" + info.param.start;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

Instance build_family(const std::string& family, Xoshiro256& rng) {
  // The zipf family is kept small enough for the exact optimizer so that
  // invariant I4 actually fires on a family with a nontrivial optimum.
  if (family == "uniform") return make_uniform_feasible(96, 8, 0.3, 1.4, rng);
  if (family == "zipf") return make_zipf(24, 3, 1.1, rng);
  if (family == "related") return make_related_capacities(96, 8, 0.3, 3, rng);
  if (family == "overloaded") return make_overloaded(96, 8, 1.5);
  throw std::logic_error("unknown family");
}

State build_start(const std::string& start, const Instance& instance,
                  Xoshiro256& rng) {
  if (start == "all0") return State::all_on(instance, 0);
  if (start == "random") return State::random(instance, rng);
  return State::round_robin(instance);
}

class ProtocolGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ProtocolGrid, InvariantsHoldEndToEnd) {
  const GridCase& grid = GetParam();

  auto run_once = [&](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    const Instance instance = build_family(grid.family, rng);
    const Graph graph = make_ring(static_cast<Vertex>(instance.num_resources()));
    State state = build_start(grid.start, instance, rng);

    ProtocolSpec spec;
    spec.kind = grid.protocol;
    spec.lambda = 0.5;
    spec.graph = &graph;
    const auto protocol = make_protocol(spec);

    EngineConfig config;
    config.max_rounds = 5000;  // capped: oscillating cases simply don't converge
    const EngineResult result = Engine(config).run(*protocol, state, rng);

    // I1 — structural consistency.
    state.check_invariants();

    // I2 — counter sanity.
    const Counters& c = result.counters;
    EXPECT_EQ(c.grants + c.rejects, c.migrate_requests);
    if (std::string(grid.protocol).find("admission") != std::string::npos) {
      EXPECT_EQ(c.grants, c.migrations);
    }
    EXPECT_EQ(c.messages(),
              2 * c.probes + c.migrate_requests + c.grants + c.rejects +
                  c.migrations);
    EXPECT_EQ(c.rounds, result.rounds);

    // I3 — converged means stable under the protocol's own notion.
    if (result.converged) {
      EXPECT_TRUE(protocol->is_stable(state));
    }

    // I4 — never above the exact optimum (identical-capacity families only;
    // the exact optimizer needs one threshold per user).
    if (instance.identical_capacities() && instance.num_users() <= 64) {
      std::vector<int> thresholds(instance.num_users());
      for (UserId u = 0; u < instance.num_users(); ++u)
        thresholds[u] = instance.threshold(u, 0);
      EXPECT_LE(static_cast<int>(result.final_satisfied),
                max_satisfied_identical(
                    thresholds, static_cast<int>(instance.num_resources())));
    }

    return std::make_tuple(result.rounds, result.final_satisfied,
                           c.migrations, c.messages());
  };

  // I5 — determinism.
  const auto a = run_once(derive_seed(1234, 1));
  const auto b = run_once(derive_seed(1234, 1));
  EXPECT_EQ(a, b);
}

constexpr const char* kFamilies[] = {"uniform", "zipf", "related", "overloaded"};
constexpr const char* kProtocols[] = {"seq-br",  "uniform",       "adaptive",
                                      "admission", "nbr-admission", "berenbrink"};
constexpr const char* kStarts[] = {"all0", "random"};

std::vector<GridCase> make_grid() {
  std::vector<GridCase> grid;
  for (const char* family : kFamilies)
    for (const char* protocol : kProtocols)
      for (const char* start : kStarts)
        grid.push_back(GridCase{family, protocol, start});
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, ProtocolGrid, ::testing::ValuesIn(make_grid()),
                         case_name);

// I6 — satisfied users never move in a satisfaction protocol's round,
// checked against per-round snapshots for each concurrent protocol.
class SatisfiedStayPut : public ::testing::TestWithParam<const char*> {};

TEST_P(SatisfiedStayPut, AcrossRounds) {
  Xoshiro256 rng(77);
  const Instance instance = make_uniform_feasible(64, 8, 0.2, 1.3, rng);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = GetParam();
  spec.lambda = 0.7;
  const auto protocol = make_protocol(spec);
  Counters counters;
  for (int round = 0; round < 60; ++round) {
    std::vector<ResourceId> before(state.num_users());
    std::vector<bool> was_satisfied(state.num_users());
    for (UserId u = 0; u < state.num_users(); ++u) {
      before[u] = state.resource_of(u);
      was_satisfied[u] = state.satisfied(u);
    }
    protocol->step(state, rng, counters);
    for (UserId u = 0; u < state.num_users(); ++u)
      if (was_satisfied[u]) {
        ASSERT_EQ(state.resource_of(u), before[u])
            << "round " << round << " user " << u;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, SatisfiedStayPut,
                         ::testing::Values("uniform", "adaptive", "admission"));

}  // namespace
}  // namespace qoslb
