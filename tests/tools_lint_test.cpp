// Self-tests for qoslb-lint (src/tools/lint): runs the rule engine against
// the known-violation fixture tree under tests/lint_fixtures/ and asserts
// exact rule hits, that the suppression syntax works, and — the gate the CI
// lint job relies on — that the repository tree itself is clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"
#include "util/json.hpp"

namespace {

using qoslb::lint::Finding;

std::vector<Finding> fixture_findings() {
  static const std::vector<Finding> kFindings =
      qoslb::lint::run({QOSLB_LINT_FIXTURES_DIR});
  return kFindings;
}

std::vector<Finding> findings_for(const std::string& file) {
  std::vector<Finding> out;
  for (const Finding& f : fixture_findings())
    if (f.file == file) out.push_back(f);
  return out;
}

std::vector<Finding> findings_for(const std::string& file,
                                  const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings_for(file))
    if (f.rule == rule) out.push_back(f);
  return out;
}

std::vector<int> lines_of(const std::vector<Finding>& fs) {
  std::vector<int> lines;
  for (const Finding& f : fs) lines.push_back(f.line);
  return lines;
}

TEST(LintRules, RuleTableIsStable) {
  std::vector<std::string> ids;
  for (const qoslb::lint::RuleInfo& r : qoslb::lint::rules())
    ids.push_back(r.id);
  EXPECT_EQ(ids, (std::vector<std::string>{
                     "QL001", "QL002", "QL003", "QL004", "QL005", "QL006",
                     "QL007", "QL008", "QL009", "QL010", "QL011", "QL012",
                     "QL013", "QL014", "QL015", "QL016"}));
}

TEST(LintRules, ExactFixtureHitCounts) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : fixture_findings()) ++counts[{f.file, f.rule}];
  const std::map<std::pair<std::string, std::string>, int> expected = {
      {{".clang-format-allowlist", "QL006"}, 1},
      {{"src/bad_rng.cpp", "QL001"}, 1},
      {{"src/core/hot_path_bad.cpp", "QL015"}, 2},
      {{"src/core/layering_bad.hpp", "QL011"}, 2},
      {{"src/core/philox_bad.cpp", "QL013"}, 1},
      {{"src/core/potential.cpp", "QL005"}, 2},
      {{"src/core/protocols/iter_bad.cpp", "QL002"}, 3},
      {{"src/core/race_bad.cpp", "QL012"}, 2},
      {{"src/core/snapshot_bad.cpp", "QL008"}, 2},
      {{"src/core/window_tracker.hpp", "QL014"}, 1},
      {{"src/obs/schema_bad.cpp", "QL016"}, 2},
      {{"src/core/protocols/registry.cpp", "QL004"}, 2},
      {{"src/core/protocols/registry.cpp", "QL009"}, 3},
      {{"src/core/satisfaction_acc.hpp", "QL005"}, 2},
      {{"src/core/wall_clock.cpp", "QL003"}, 3},
      {{"src/orphan.cpp", "QL004"}, 1},
      {{"src/sim/steady_clock_bad.cpp", "QL007"}, 2},
      {{"src/sim/thread_spawn_bad.cpp", "QL010"}, 4},
  };
  EXPECT_EQ(counts, expected);
}

TEST(LintRules, Ql001AnchorsTheBannedLine) {
  const std::vector<Finding> fs = findings_for("src/bad_rng.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "QL001");
  EXPECT_EQ(fs[0].line, 6);
  EXPECT_NE(fs[0].message.find("std::mt19937"), std::string::npos);
}

TEST(LintRules, Ql002FlagsRangeForAndIteratorWalks) {
  const std::vector<Finding> fs =
      findings_for("src/core/protocols/iter_bad.cpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{8, 9, 10}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL002");
}

TEST(LintRules, Ql003FlagsClockEnvAndTimerInclude) {
  const std::vector<Finding> fs = findings_for("src/core/wall_clock.cpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{4, 9, 10}));
  EXPECT_NE(fs[0].message.find("util/timer.hpp"), std::string::npos);
  EXPECT_NE(fs[1].message.find("system_clock"), std::string::npos);
  EXPECT_NE(fs[2].message.find("getenv"), std::string::npos);
}

TEST(LintRules, Ql004CatchesBothRegistryMismatchDirections) {
  const std::vector<Finding> fs =
      findings_for("src/core/protocols/registry.cpp", "QL004");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_NE(fs[0].message.find("'bad'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("does not define step_users"),
            std::string::npos);
  EXPECT_NE(fs[1].message.find("'understated'"), std::string::npos);
  EXPECT_NE(fs[1].message.find("returns true"), std::string::npos);
}

TEST(LintRules, Ql009CatchesAllThreeRestrictedContractDirections) {
  const std::vector<Finding> fs =
      findings_for("src/core/protocols/registry.cpp", "QL009");
  ASSERT_EQ(fs.size(), 3u);
  // Sorted by registry-entry line: r-bad, r-understated, r-unsafe.
  EXPECT_NE(fs[0].message.find("'r-bad'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("does not return true"), std::string::npos);
  EXPECT_NE(fs[1].message.find("'r-understated'"), std::string::npos);
  EXPECT_NE(fs[1].message.find("returns true"), std::string::npos);
  EXPECT_NE(fs[2].message.find("'r-unsafe'"), std::string::npos);
  EXPECT_NE(fs[2].message.find("sample_reachable"), std::string::npos);
}

TEST(LintRules, Ql004FlagsCMakeOrphans) {
  const std::vector<Finding> fs = findings_for("src/orphan.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "QL004");
  EXPECT_NE(fs[0].message.find("CMakeLists.txt"), std::string::npos);
}

TEST(LintRules, Ql007FlagsSteadyClockReadAndWrapperInSimCore) {
  const std::vector<Finding> fs = findings_for("src/sim/steady_clock_bad.cpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{9, 13}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL007");
  EXPECT_NE(fs[0].message.find("steady_clock"), std::string::npos);
  EXPECT_NE(fs[1].message.find("SteadyClock"), std::string::npos);
}

TEST(LintRules, Ql006FlagsStaleAllowlistEntries) {
  const std::vector<Finding> fs = findings_for(".clang-format-allowlist");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_NE(fs[0].message.find("src/not_there.cpp"), std::string::npos);
}

TEST(LintRules, Ql008FlagsBothContractDirections) {
  const std::vector<Finding> fs = findings_for("src/core/snapshot_bad.cpp");
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL008");
  // Sorted by line: the write-side finding anchors at write_snapshot's
  // definition, the read-side one at read_snapshot's.
  EXPECT_EQ(fs[0].line, 16);
  EXPECT_NE(fs[0].message.find("'beta'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("never read"), std::string::npos);
  EXPECT_EQ(fs[1].line, 21);
  EXPECT_NE(fs[1].message.find("'gamma'"), std::string::npos);
  EXPECT_NE(fs[1].message.find("never written"), std::string::npos);
}

TEST(LintRules, Ql010FlagsEverySpawnPrimitiveButNotMemberReads) {
  const std::vector<Finding> fs = findings_for("src/sim/thread_spawn_bad.cpp");
  // One hit per spawn line; the std::thread::hardware_concurrency() read on
  // line 12 must not appear.
  EXPECT_EQ(lines_of(fs), (std::vector<int>{16, 17, 18, 20}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL010");
  EXPECT_NE(fs[0].message.find("std::thread construction"), std::string::npos);
  EXPECT_NE(fs[1].message.find("std::jthread"), std::string::npos);
  EXPECT_NE(fs[2].message.find("std::async"), std::string::npos);
  EXPECT_NE(fs[3].message.find("pthread_create"), std::string::npos);
  EXPECT_NE(fs[0].message.find("RoundWorkerPool"), std::string::npos);
}

TEST(LintScope, Ql010ExemptsTheWorkerPoolItself) {
  // sim/worker_pool.* is the sanctioned spawn site: the same construction
  // that fires four findings above yields none here.
  EXPECT_TRUE(findings_for("src/sim/worker_pool.cpp").empty());
}

TEST(LintSuppressions, SameLineAllowSilencesTheFinding) {
  EXPECT_TRUE(findings_for("src/suppressed_rng.cpp").empty());
}

TEST(LintSuppressions, PrecedingCommentLineAllowWorks) {
  // satisfaction_acc.hpp has one float suppressed by a comment line directly
  // above it and two unsuppressed ones; only the latter may surface.
  const std::vector<Finding> fs =
      findings_for("src/core/satisfaction_acc.hpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{9, 10}));
}

TEST(LintSuppressions, AllowFileSilencesTheWholeFile) {
  EXPECT_TRUE(findings_for("src/allow_file.cpp").empty());
}

TEST(LintScope, RngDirectoryMayUseStandardEngines) {
  EXPECT_TRUE(findings_for("src/rng/keyed_ok.cpp").empty());
}

TEST(LintScope, ObsDirectoryMayReadSteadyClock) {
  EXPECT_TRUE(findings_for("src/obs/clock_ok.cpp").empty());
}

TEST(LintScope, CleanFileHasNoFindings) {
  EXPECT_TRUE(findings_for("src/clean.cpp").empty());
}

TEST(LintRules, Ql011FlagsInvertedLayerEdgesOnly) {
  // Two upward includes fire; the core->rng include on the next line is the
  // in-file control and must not.
  const std::vector<Finding> fs = findings_for("src/core/layering_bad.hpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{6, 7}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL011");
  EXPECT_NE(fs[0].message.find("sim/accounting.hpp"), std::string::npos);
  EXPECT_NE(fs[0].message.find("core/ may include only"), std::string::npos);
  EXPECT_NE(fs[1].message.find("obs/telemetry.hpp"), std::string::npos);
}

TEST(LintScope, Ql011EngineSeamMayIncludeSimAndObs) {
  // The same includes that fire in layering_bad.hpp are sanctioned in the
  // engine TU — the declared core->sim/obs orchestration seam.
  EXPECT_TRUE(findings_for("src/core/engine.cpp").empty());
}

TEST(LintRules, Ql012FlagsDirectAndCallGraphReachedMutations) {
  const std::vector<Finding> fs = findings_for("src/core/race_bad.cpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{12, 17}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL012");
  // Line 12 sits in apply_now(), one hop below step_users(): its why chain
  // must carry both steps, root first.
  EXPECT_NE(fs[0].message.find("loads array"), std::string::npos);
  ASSERT_EQ(fs[0].why.size(), 2u);
  EXPECT_NE(fs[0].why[0].find("step_users"), std::string::npos);
  EXPECT_NE(fs[0].why[1].find("apply_now"), std::string::npos);
  // Line 17 is in the root itself: a one-step chain.
  EXPECT_NE(fs[1].message.find("State::move()"), std::string::npos);
  ASSERT_EQ(fs[1].why.size(), 1u);
  EXPECT_NE(fs[1].why[0].find("step_users"), std::string::npos);
}

TEST(LintScope, Ql012AllowsCommitRoundMutations) {
  // Staging in step_users() plus mutating in commit_round() is the
  // sanctioned migration shape.
  EXPECT_TRUE(findings_for("src/core/race_ok.cpp").empty());
}

TEST(LintRules, Ql013FlagsRawKeyedPhiloxConstruction) {
  const std::vector<Finding> fs = findings_for("src/core/philox_bad.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "QL013");
  EXPECT_EQ(fs[0].line, 9);
  EXPECT_NE(fs[0].message.find("'raw_seed'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("mix64"), std::string::npos);
}

TEST(LintScope, Ql013ResolvesSanctionedKeysInterprocedurally) {
  // draw()'s key parameter is clean only because every caller routes the
  // argument through mix64(); the dataflow walk must chase it.
  EXPECT_TRUE(findings_for("src/core/philox_ok.cpp").empty());
}

TEST(LintRules, Ql014FlagsTheUnserializedMemberOnly) {
  // omega_ fires; alpha_ matches the field list, span_rounds_ is covered by
  // its as(window) annotation and cached_best_ by transient.
  const std::vector<Finding> fs = findings_for("src/core/window_tracker.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "QL014");
  EXPECT_EQ(fs[0].line, 21);
  EXPECT_NE(fs[0].message.find("'omega_'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("WindowTracker"), std::string::npos);
}

TEST(LintRules, Ql015FlagsLocksAndReachableAllocations) {
  const std::vector<Finding> fs = findings_for("src/core/hot_path_bad.cpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{10, 15}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL015");
  EXPECT_NE(fs[0].message.find("heap allocation"), std::string::npos);
  ASSERT_EQ(fs[0].why.size(), 2u);
  EXPECT_NE(fs[0].why[1].find("grow_scratch"), std::string::npos);
  EXPECT_NE(fs[1].message.find("lock acquisition"), std::string::npos);
}

TEST(LintSuppressions, Ql015PerCallSiteAllowWorks) {
  EXPECT_TRUE(findings_for("src/core/hot_path_ok.cpp").empty());
}

TEST(LintRules, Ql016FlagsUndocumentedKeyAndMetricName) {
  const std::vector<Finding> fs = findings_for("src/obs/schema_bad.cpp");
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL016");
  // Sorted by line: the JSONL-key hit, then the registration hit. The
  // documented 'kind' key on the same line must not fire.
  EXPECT_EQ(fs[0].line, 13);
  EXPECT_NE(fs[0].message.find("'mystery'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("schema drift"), std::string::npos);
  EXPECT_EQ(fs[1].line, 14);
  EXPECT_NE(fs[1].message.find("'engine/bogus_counter'"), std::string::npos);
}

TEST(LintScope, Ql016AcceptsComposedWildcardNamesAndSuppression) {
  // phase/<name>_seconds covers the std::string("phase/") + ... + "_seconds"
  // concatenation; the undocumented key is silenced by allow(QL016); the
  // literal-free gauge(phase) registration is out of scope.
  EXPECT_TRUE(findings_for("src/obs/schema_ok.cpp").empty());
}

TEST(LintFormat, HumanAndFixListRenderings) {
  const std::vector<Finding> one = {{"QL001", "src/x.cpp", 7, "boom"}};
  EXPECT_EQ(qoslb::lint::format(one, /*fix_list=*/false),
            "src/x.cpp:7: [QL001] boom\n");
  EXPECT_EQ(qoslb::lint::format(one, /*fix_list=*/true),
            "QL001\tsrc/x.cpp\t7\n");
}

// Golden test for the SARIF writer: the emitted log must round-trip through
// the repo's own JSON reader and carry the 2.1.0 shape CI consumers (GitHub
// code scanning, sarif-tools) rely on.
TEST(LintSarif, EmitsWellFormedSarif210) {
  const std::vector<Finding> two = {
      {"QL012", "src/core/race_bad.cpp", 17, "State::move() reached",
       {"src/core/race_bad.cpp:16 step_users"}},
      {"QL001", "src/x.cpp", 7, "line says \"rand()\""},
  };
  const qoslb::json::Value log = qoslb::json::parse(qoslb::lint::sarif(two));

  EXPECT_EQ(log.find("$schema")->as_string(),
            "https://json.schemastore.org/sarif-2.1.0.json");
  EXPECT_EQ(log.find("version")->as_string(), "2.1.0");
  const qoslb::json::Value& run = log.find("runs")->items().at(0);
  const qoslb::json::Value* driver = run.find("tool")->find("driver");
  EXPECT_EQ(driver->find("name")->as_string(), "qoslb-lint");
  // One rule descriptor per registered rule, in ID order.
  const auto& rule_descs = driver->find("rules")->items();
  ASSERT_EQ(rule_descs.size(), qoslb::lint::rules().size());
  EXPECT_EQ(rule_descs.front().find("id")->as_string(), "QL001");
  EXPECT_EQ(rule_descs.back().find("id")->as_string(), "QL016");

  const auto& results = run.find("results")->items();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].find("ruleId")->as_string(), "QL012");
  EXPECT_EQ(results[0].find("level")->as_string(), "error");
  // The call chain rides inside the message text.
  EXPECT_NE(results[0].find("message")->find("text")->as_string().find(
                "[call path: src/core/race_bad.cpp:16 step_users]"),
            std::string::npos);
  const qoslb::json::Value* physical =
      results[0].find("locations")->items().at(0).find("physicalLocation");
  EXPECT_EQ(physical->find("artifactLocation")->find("uri")->as_string(),
            "src/core/race_bad.cpp");
  EXPECT_EQ(physical->find("region")->find("startLine")->as_number(), 17);
  // Quotes in messages must come back intact through escaping.
  EXPECT_EQ(results[1].find("message")->find("text")->as_string(),
            "line says \"rand()\"");
}

TEST(LintSarif, EmptyFindingsStillProduceAValidLog) {
  const qoslb::json::Value log = qoslb::json::parse(qoslb::lint::sarif({}));
  EXPECT_TRUE(
      log.find("runs")->items().at(0).find("results")->items().empty());
}

// The acceptance gate: the repository tree itself must be clean. Any
// violation reintroduced anywhere in src/, bench/, tests/, or examples/
// fails this test with the offending file:line in the message.
TEST(LintTree, RepositoryIsClean) {
  const std::vector<Finding> fs = qoslb::lint::run({QOSLB_REPO_ROOT_DIR});
  EXPECT_TRUE(fs.empty()) << qoslb::lint::format(fs, /*fix_list=*/false);
}

}  // namespace
