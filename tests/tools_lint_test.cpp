// Self-tests for qoslb-lint (src/tools/lint): runs the rule engine against
// the known-violation fixture tree under tests/lint_fixtures/ and asserts
// exact rule hits, that the suppression syntax works, and — the gate the CI
// lint job relies on — that the repository tree itself is clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace {

using qoslb::lint::Finding;

std::vector<Finding> fixture_findings() {
  static const std::vector<Finding> kFindings =
      qoslb::lint::run({QOSLB_LINT_FIXTURES_DIR});
  return kFindings;
}

std::vector<Finding> findings_for(const std::string& file) {
  std::vector<Finding> out;
  for (const Finding& f : fixture_findings())
    if (f.file == file) out.push_back(f);
  return out;
}

std::vector<Finding> findings_for(const std::string& file,
                                  const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings_for(file))
    if (f.rule == rule) out.push_back(f);
  return out;
}

std::vector<int> lines_of(const std::vector<Finding>& fs) {
  std::vector<int> lines;
  for (const Finding& f : fs) lines.push_back(f.line);
  return lines;
}

TEST(LintRules, RuleTableIsStable) {
  std::vector<std::string> ids;
  for (const qoslb::lint::RuleInfo& r : qoslb::lint::rules())
    ids.push_back(r.id);
  EXPECT_EQ(ids, (std::vector<std::string>{"QL001", "QL002", "QL003", "QL004",
                                           "QL005", "QL006", "QL007", "QL008",
                                           "QL009", "QL010"}));
}

TEST(LintRules, ExactFixtureHitCounts) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : fixture_findings()) ++counts[{f.file, f.rule}];
  const std::map<std::pair<std::string, std::string>, int> expected = {
      {{".clang-format-allowlist", "QL006"}, 1},
      {{"src/bad_rng.cpp", "QL001"}, 1},
      {{"src/core/potential.cpp", "QL005"}, 2},
      {{"src/core/protocols/iter_bad.cpp", "QL002"}, 3},
      {{"src/core/snapshot_bad.cpp", "QL008"}, 2},
      {{"src/core/protocols/registry.cpp", "QL004"}, 2},
      {{"src/core/protocols/registry.cpp", "QL009"}, 3},
      {{"src/core/satisfaction_acc.hpp", "QL005"}, 2},
      {{"src/core/wall_clock.cpp", "QL003"}, 3},
      {{"src/orphan.cpp", "QL004"}, 1},
      {{"src/sim/steady_clock_bad.cpp", "QL007"}, 2},
      {{"src/sim/thread_spawn_bad.cpp", "QL010"}, 4},
  };
  EXPECT_EQ(counts, expected);
}

TEST(LintRules, Ql001AnchorsTheBannedLine) {
  const std::vector<Finding> fs = findings_for("src/bad_rng.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "QL001");
  EXPECT_EQ(fs[0].line, 6);
  EXPECT_NE(fs[0].message.find("std::mt19937"), std::string::npos);
}

TEST(LintRules, Ql002FlagsRangeForAndIteratorWalks) {
  const std::vector<Finding> fs =
      findings_for("src/core/protocols/iter_bad.cpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{8, 9, 10}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL002");
}

TEST(LintRules, Ql003FlagsClockEnvAndTimerInclude) {
  const std::vector<Finding> fs = findings_for("src/core/wall_clock.cpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{4, 9, 10}));
  EXPECT_NE(fs[0].message.find("util/timer.hpp"), std::string::npos);
  EXPECT_NE(fs[1].message.find("system_clock"), std::string::npos);
  EXPECT_NE(fs[2].message.find("getenv"), std::string::npos);
}

TEST(LintRules, Ql004CatchesBothRegistryMismatchDirections) {
  const std::vector<Finding> fs =
      findings_for("src/core/protocols/registry.cpp", "QL004");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_NE(fs[0].message.find("'bad'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("does not define step_users"),
            std::string::npos);
  EXPECT_NE(fs[1].message.find("'understated'"), std::string::npos);
  EXPECT_NE(fs[1].message.find("returns true"), std::string::npos);
}

TEST(LintRules, Ql009CatchesAllThreeRestrictedContractDirections) {
  const std::vector<Finding> fs =
      findings_for("src/core/protocols/registry.cpp", "QL009");
  ASSERT_EQ(fs.size(), 3u);
  // Sorted by registry-entry line: r-bad, r-understated, r-unsafe.
  EXPECT_NE(fs[0].message.find("'r-bad'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("does not return true"), std::string::npos);
  EXPECT_NE(fs[1].message.find("'r-understated'"), std::string::npos);
  EXPECT_NE(fs[1].message.find("returns true"), std::string::npos);
  EXPECT_NE(fs[2].message.find("'r-unsafe'"), std::string::npos);
  EXPECT_NE(fs[2].message.find("sample_reachable"), std::string::npos);
}

TEST(LintRules, Ql004FlagsCMakeOrphans) {
  const std::vector<Finding> fs = findings_for("src/orphan.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "QL004");
  EXPECT_NE(fs[0].message.find("CMakeLists.txt"), std::string::npos);
}

TEST(LintRules, Ql007FlagsSteadyClockReadAndWrapperInSimCore) {
  const std::vector<Finding> fs = findings_for("src/sim/steady_clock_bad.cpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{9, 13}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL007");
  EXPECT_NE(fs[0].message.find("steady_clock"), std::string::npos);
  EXPECT_NE(fs[1].message.find("SteadyClock"), std::string::npos);
}

TEST(LintRules, Ql006FlagsStaleAllowlistEntries) {
  const std::vector<Finding> fs = findings_for(".clang-format-allowlist");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_NE(fs[0].message.find("src/not_there.cpp"), std::string::npos);
}

TEST(LintRules, Ql008FlagsBothContractDirections) {
  const std::vector<Finding> fs = findings_for("src/core/snapshot_bad.cpp");
  ASSERT_EQ(fs.size(), 2u);
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL008");
  // Sorted by line: the write-side finding anchors at write_snapshot's
  // definition, the read-side one at read_snapshot's.
  EXPECT_EQ(fs[0].line, 16);
  EXPECT_NE(fs[0].message.find("'beta'"), std::string::npos);
  EXPECT_NE(fs[0].message.find("never read"), std::string::npos);
  EXPECT_EQ(fs[1].line, 21);
  EXPECT_NE(fs[1].message.find("'gamma'"), std::string::npos);
  EXPECT_NE(fs[1].message.find("never written"), std::string::npos);
}

TEST(LintRules, Ql010FlagsEverySpawnPrimitiveButNotMemberReads) {
  const std::vector<Finding> fs = findings_for("src/sim/thread_spawn_bad.cpp");
  // One hit per spawn line; the std::thread::hardware_concurrency() read on
  // line 12 must not appear.
  EXPECT_EQ(lines_of(fs), (std::vector<int>{16, 17, 18, 20}));
  for (const Finding& f : fs) EXPECT_EQ(f.rule, "QL010");
  EXPECT_NE(fs[0].message.find("std::thread construction"), std::string::npos);
  EXPECT_NE(fs[1].message.find("std::jthread"), std::string::npos);
  EXPECT_NE(fs[2].message.find("std::async"), std::string::npos);
  EXPECT_NE(fs[3].message.find("pthread_create"), std::string::npos);
  EXPECT_NE(fs[0].message.find("RoundWorkerPool"), std::string::npos);
}

TEST(LintScope, Ql010ExemptsTheWorkerPoolItself) {
  // sim/worker_pool.* is the sanctioned spawn site: the same construction
  // that fires four findings above yields none here.
  EXPECT_TRUE(findings_for("src/sim/worker_pool.cpp").empty());
}

TEST(LintSuppressions, SameLineAllowSilencesTheFinding) {
  EXPECT_TRUE(findings_for("src/suppressed_rng.cpp").empty());
}

TEST(LintSuppressions, PrecedingCommentLineAllowWorks) {
  // satisfaction_acc.hpp has one float suppressed by a comment line directly
  // above it and two unsuppressed ones; only the latter may surface.
  const std::vector<Finding> fs =
      findings_for("src/core/satisfaction_acc.hpp");
  EXPECT_EQ(lines_of(fs), (std::vector<int>{9, 10}));
}

TEST(LintSuppressions, AllowFileSilencesTheWholeFile) {
  EXPECT_TRUE(findings_for("src/allow_file.cpp").empty());
}

TEST(LintScope, RngDirectoryMayUseStandardEngines) {
  EXPECT_TRUE(findings_for("src/rng/keyed_ok.cpp").empty());
}

TEST(LintScope, ObsDirectoryMayReadSteadyClock) {
  EXPECT_TRUE(findings_for("src/obs/clock_ok.cpp").empty());
}

TEST(LintScope, CleanFileHasNoFindings) {
  EXPECT_TRUE(findings_for("src/clean.cpp").empty());
}

TEST(LintFormat, HumanAndFixListRenderings) {
  const std::vector<Finding> one = {{"QL001", "src/x.cpp", 7, "boom"}};
  EXPECT_EQ(qoslb::lint::format(one, /*fix_list=*/false),
            "src/x.cpp:7: [QL001] boom\n");
  EXPECT_EQ(qoslb::lint::format(one, /*fix_list=*/true),
            "QL001\tsrc/x.cpp\t7\n");
}

// The acceptance gate: the repository tree itself must be clean. Any
// violation reintroduced anywhere in src/, bench/, tests/, or examples/
// fails this test with the offending file:line in the message.
TEST(LintTree, RepositoryIsClean) {
  const std::vector<Finding> fs = qoslb::lint::run({QOSLB_REPO_ROOT_DIR});
  EXPECT_TRUE(fs.empty()) << qoslb::lint::format(fs, /*fix_list=*/false);
}

}  // namespace
