#include "core/dynamics/hybrid.hpp"

#include <gtest/gtest.h>

#include "core/dynamics/quality_game.hpp"
#include "core/generators.hpp"
#include "core/engine.hpp"
#include "core/satisfaction.hpp"

namespace qoslb {
namespace {

TEST(Hybrid, EpsilonZeroStopsAtSatisfactionEquilibrium) {
  Xoshiro256 rng(1);
  const Instance instance = make_uniform_feasible(256, 16, 0.3, 1.0, rng);
  State state = State::all_on(instance, 0);
  HybridEpsilonGreedy protocol(0.5, 0.0);
  EngineConfig config;
  config.max_rounds = 50000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_satisfaction_equilibrium(state));
  // Typically NOT a quality Nash: the run stops at "good enough".
  EXPECT_TRUE(result.all_satisfied);
}

TEST(Hybrid, PositiveEpsilonReachesQualityNash) {
  Xoshiro256 rng(3);
  const Instance instance = make_uniform_feasible(256, 16, 0.3, 1.0, rng);
  State state = State::all_on(instance, 0);
  HybridEpsilonGreedy protocol(0.5, 0.2);
  EngineConfig config;
  config.max_rounds = 200000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_quality_nash(state));
  EXPECT_LE(state.max_load() - state.min_load(), 1);
}

TEST(Hybrid, EpsilonOneMatchesQualitySamplingBalance) {
  Xoshiro256 rng(5);
  const Instance instance =
      Instance::identical(8, 1.0, std::vector<double>(256, 1e-3));
  State state = State::all_on(instance, 0);
  HybridEpsilonGreedy protocol(0.5, 1.0);
  EngineConfig config;
  config.max_rounds = 100000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(state.max_load() - state.min_load(), 1);
}

TEST(Hybrid, QualityMovesNeverBreakTheMoverInIsolation) {
  // Single quality move keeps the mover satisfied (better quality implies
  // the requirement stays met); checked per-round on a converged system with
  // only one mover possible (epsilon small, many rounds).
  Xoshiro256 rng(7);
  const Instance instance = make_uniform_feasible(64, 8, 0.4, 1.0, rng);
  State state = State::round_robin(instance);  // all satisfied
  HybridEpsilonGreedy protocol(0.5, 0.05);
  Counters counters;
  for (int round = 0; round < 200; ++round) {
    protocol.step(state, rng, counters);
    // Total satisfaction can dip transiently under concurrency, but from a
    // balanced state with slack 0.4 quality moves cannot overshoot.
    ASSERT_EQ(state.count_satisfied(), state.num_users()) << "round " << round;
  }
}

TEST(Hybrid, StabilityNotionFollowsEpsilon) {
  const Instance instance = Instance::identical(2, 1.0, {0.5, 0.5, 0.5});
  // Loads 2/1: satisfied everywhere (thresholds 2), but not a quality Nash
  // (the pair resource user... actually loads {2,1}: user on load-2 moving
  // to load-1 resource gets load 2 again — no strict gain; Nash too).
  const State state(instance, {0, 0, 1});
  HybridEpsilonGreedy eps0(0.5, 0.0);
  HybridEpsilonGreedy eps5(0.5, 0.5);
  EXPECT_TRUE(eps0.is_stable(state));
  EXPECT_TRUE(eps5.is_stable(state));

  // All on one resource: satisfied? load 3 > threshold 2 -> unsatisfied, and
  // both notions agree the state is unstable.
  const State crowded = State::all_on(instance, 0);
  EXPECT_FALSE(eps0.is_stable(crowded));
  EXPECT_FALSE(eps5.is_stable(crowded));
}

TEST(Hybrid, RejectsBadParameters) {
  EXPECT_THROW(HybridEpsilonGreedy(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(HybridEpsilonGreedy(0.5, -0.1), std::invalid_argument);
  EXPECT_THROW(HybridEpsilonGreedy(0.5, 1.5), std::invalid_argument);
}

TEST(Hybrid, NameEncodesParameters) {
  EXPECT_EQ(HybridEpsilonGreedy(0.5, 0.25).name(), "hybrid(lambda=0.5,eps=0.25)");
}

}  // namespace
}  // namespace qoslb
