// The decision-tracing determinism contract (docs/observability.md):
// attaching a DecisionSink must leave every simulation output bit-identical
// to the tracing-off run — across thread counts {1,2,4,8}, dense/active
// engine modes, and uniform/matrix/bipartite rate models — and the sampled
// decision stream itself must be identical across all of those knobs, since
// it is merged in shard order and sampled by a pure (seed, user) hash.
// Plus the async span contract: span events ride the DES without changing
// it, and group send/retry/timeout/ack chains under stable span ids.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/snapshot.hpp"
#include "net/generators.hpp"
#include "obs/decision_sink.hpp"
#include "qoslb.hpp"

namespace qoslb {
namespace {

using EventKey =
    std::tuple<std::uint64_t, std::uint64_t, std::int64_t, std::int64_t,
               std::int64_t, std::int64_t, std::int64_t, bool, bool, bool,
               bool>;

EventKey key_of(const obs::DecisionEvent& e) {
  return {e.round,     e.user,    e.from,    e.probe,
          e.target,    e.to,      e.threshold, e.requested,
          e.granted,   e.satisfied_before, e.satisfied_after};
}

std::vector<EventKey> stream_of(const obs::MemoryDecisionSink& sink) {
  std::vector<EventKey> keys;
  keys.reserve(sink.decisions().size());
  for (const obs::DecisionEvent& e : sink.decisions()) keys.push_back(key_of(e));
  return keys;
}

/// Metrics JSONL with the one legitimately layout-dependent line — the
/// engine/threads gauge — dropped, so the rest can be compared bit-exactly.
std::string comparable_metrics(const obs::MetricsRegistry& metrics) {
  std::ostringstream out;
  metrics.write_jsonl(out);
  std::istringstream in(out.str());
  std::string filtered, line;
  while (std::getline(in, line))
    if (line.find("\"engine/threads\"") == std::string::npos)
      filtered += line + '\n';
  return filtered;
}

EngineConfig base_config() {
  EngineConfig config;
  config.shard_size = 128;
  config.max_rounds = 400;
  config.record_trajectory = true;
  return config;
}

/// Herding-prone start that respects restricted assignment: everyone piles
/// onto their first reachable resource.
State adversarial_start(const Instance& instance) {
  std::vector<ResourceId> assignment(instance.num_users(), 0);
  if (instance.restricted())
    for (UserId u = 0; u < assignment.size(); ++u)
      assignment[u] = instance.reachable(u).front();
  return State(instance, std::move(assignment));
}

struct RateCase {
  std::string name;
  Instance instance;
};

std::vector<RateCase> rate_cases() {
  Xoshiro256 rng(21);
  std::vector<RateCase> cases;
  cases.push_back({"uniform", make_uniform_feasible(2000, 32, 0.4, 1.5, rng)});
  cases.push_back({"matrix", make_zipf_rates(2000, 32, 0.1, 1.1, rng)});
  cases.push_back(
      {"bipartite", make_clustered_bipartite(2000, 32, 8, 2, 0.1, rng)});
  return cases;
}

// The acceptance matrix: tracing on/off × threads {1,2,4,8} × dense/active ×
// three rate models, one protocol. The tracing-off dense 1-thread run is the
// reference for the realization; the first traced run is the reference for
// the stream and the per-mode metrics.
TEST(DecisionTraceInvariance, MatrixAcrossThreadsModesAndRateModels) {
  for (const RateCase& rate_case : rate_cases()) {
    const auto make = [] {
      ProtocolSpec spec;
      spec.kind = "admission";
      spec.lambda = 1.0;
      return make_protocol(spec);
    };

    std::uint64_t reference_hash = 0;
    EngineResult reference;
    {
      State state = adversarial_start(rate_case.instance);
      const auto protocol = make();
      Xoshiro256 rng(77);
      reference = Engine(base_config()).run(*protocol, state, rng);
      reference_hash = state_hash(state);
    }

    std::vector<EventKey> reference_stream;
    bool have_stream = false;
    for (const EngineMode mode : {EngineMode::kDense, EngineMode::kActive}) {
      // active_size (and with it the active-set histogram) legitimately
      // differs between modes, so metrics bit-identity is a per-mode claim.
      std::string reference_metrics;
      for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        obs::MetricsRegistry metrics;
        obs::MemoryDecisionSink sink;
        EngineConfig config = base_config();
        config.mode = mode;
        config.threads = threads;
        config.telemetry.metrics = &metrics;
        config.telemetry.decisions = &sink;
        config.telemetry.decision_sample = 2;

        State state = adversarial_start(rate_case.instance);
        const auto protocol = make();
        Xoshiro256 rng(77);
        const EngineResult result =
            Engine(config).run(*protocol, state, rng);

        const std::string label =
            rate_case.name +
            (mode == EngineMode::kActive ? " active" : " dense") +
            " threads=" + std::to_string(threads);
        EXPECT_EQ(state_hash(state), reference_hash) << label;
        EXPECT_EQ(result.rounds, reference.rounds) << label;
        EXPECT_EQ(result.unsatisfied_trajectory,
                  reference.unsatisfied_trajectory)
            << label;
        EXPECT_EQ(result.counters.migrations,
                  reference.counters.migrations)
            << label;

        ASSERT_EQ(sink.runs().size(), 1u) << label;
        // The sample key is the master seed the run derived (and a
        // checkpoint would store) — every traced user passes the hash gate.
        for (const obs::DecisionEvent& event : sink.decisions())
          ASSERT_TRUE(decision_sampled(sink.runs()[0].seed, event.user, 2))
              << label;
        EXPECT_EQ(result.telemetry.decision_events, sink.decisions().size())
            << label;

        if (!have_stream) {
          reference_stream = stream_of(sink);
          have_stream = true;
          ASSERT_FALSE(reference_stream.empty()) << label;
        } else {
          EXPECT_EQ(stream_of(sink), reference_stream) << label;
        }
        if (reference_metrics.empty()) {
          reference_metrics = comparable_metrics(metrics);
        } else {
          EXPECT_EQ(comparable_metrics(metrics), reference_metrics) << label;
        }
      }
    }
  }
}

struct ShardedCase {
  std::string kind;
  double lambda;
};

const std::vector<ShardedCase>& sharded_cases() {
  static const std::vector<ShardedCase> kCases = {
      {"uniform", 0.5},      {"adaptive", 1.0},      {"admission", 1.0},
      {"nbr-uniform", 0.5},  {"nbr-admission", 1.0}, {"berenbrink", 1.0}};
  return kCases;
}

std::string case_name(const ::testing::TestParamInfo<ShardedCase>& info) {
  std::string name = info.param.kind;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

class DecisionTracePerProtocol : public ::testing::TestWithParam<ShardedCase> {
};

// Every sharded protocol emits the same stream from every (mode, threads)
// pair, without perturbing the run.
TEST_P(DecisionTracePerProtocol, StreamIsLayoutInvariantAndObservational) {
  const ShardedCase& param = GetParam();
  Xoshiro256 gen_rng(1);
  const Instance instance = make_uniform_feasible(2000, 32, 0.5, 1.5, gen_rng);
  const Graph ring = make_ring(32);
  const auto make = [&] {
    ProtocolSpec spec;
    spec.kind = param.kind;
    spec.lambda = param.lambda;
    spec.graph = &ring;
    return make_protocol(spec);
  };

  std::uint64_t reference_hash = 0;
  EngineResult reference;
  {
    State state = State::all_on(instance, 0);
    const auto protocol = make();
    Xoshiro256 rng(77);
    reference = Engine(base_config()).run(*protocol, state, rng);
    reference_hash = state_hash(state);
  }

  std::vector<EventKey> reference_stream;
  bool have_stream = false;
  for (const EngineMode mode : {EngineMode::kDense, EngineMode::kActive}) {
    for (const std::size_t threads : {1u, 4u}) {
      obs::MemoryDecisionSink sink;
      EngineConfig config = base_config();
      config.mode = mode;
      config.threads = threads;
      config.telemetry.decisions = &sink;
      config.telemetry.decision_sample = 3;

      State state = State::all_on(instance, 0);
      const auto protocol = make();
      Xoshiro256 rng(77);
      const EngineResult result = Engine(config).run(*protocol, state, rng);

      const std::string label =
          param.kind + (mode == EngineMode::kActive ? " active" : " dense") +
          " threads=" + std::to_string(threads);
      EXPECT_EQ(state_hash(state), reference_hash) << label;
      EXPECT_EQ(result.rounds, reference.rounds) << label;
      EXPECT_EQ(result.unsatisfied_trajectory,
                reference.unsatisfied_trajectory)
          << label;

      // Event-shape contract, protocol-independent: a grant moved the user
      // to its target; an unrequested round left it in place.
      for (const obs::DecisionEvent& event : sink.decisions()) {
        if (event.granted) {
          EXPECT_TRUE(event.requested) << label;
          EXPECT_EQ(event.to, event.target) << label;
        }
        if (!event.requested) {
          EXPECT_EQ(event.target, obs::kNoDecisionTarget) << label;
          EXPECT_FALSE(event.granted) << label;
          EXPECT_EQ(event.to, event.from) << label;
        }
      }

      // Diagnostics accounting: one row per executed round; the per-round
      // granted-move tallies sum to the engine's migration counter.
      ASSERT_EQ(sink.diags().size(), result.rounds) << label;
      std::uint64_t moved = 0;
      for (const obs::DiagRow& row : sink.diags()) moved += row.migrations;
      EXPECT_EQ(moved, result.counters.migrations) << label;

      if (!have_stream) {
        reference_stream = stream_of(sink);
        have_stream = true;
        ASSERT_FALSE(reference_stream.empty()) << label;
      } else {
        EXPECT_EQ(stream_of(sink), reference_stream) << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShardedProtocols, DecisionTracePerProtocol,
                         ::testing::ValuesIn(sharded_cases()), case_name);

// Sampling at 1/k is exactly the full stream filtered by the (seed, user)
// hash gate — no rerandomization, no order change.
TEST(DecisionTrace, SampledStreamIsAFilterOfTheFullStream) {
  Xoshiro256 gen_rng(1);
  const Instance instance = make_uniform_feasible(1500, 24, 0.5, 1.5, gen_rng);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;

  const auto run_with_sample = [&](std::uint64_t every,
                                   obs::MemoryDecisionSink& sink) {
    EngineConfig config = base_config();
    config.telemetry.decisions = &sink;
    config.telemetry.decision_sample = every;
    State state = State::all_on(instance, 0);
    const auto protocol = make_protocol(spec);
    Xoshiro256 rng(5);
    return Engine(config).run(*protocol, state, rng);
  };

  obs::MemoryDecisionSink full;
  obs::MemoryDecisionSink sampled;
  run_with_sample(1, full);
  run_with_sample(4, sampled);
  ASSERT_EQ(full.runs().size(), 1u);
  const std::uint64_t seed = full.runs()[0].seed;
  EXPECT_EQ(sampled.runs()[0].seed, seed);

  std::vector<EventKey> expected;
  for (const obs::DecisionEvent& event : full.decisions())
    if (decision_sampled(seed, event.user, 4)) expected.push_back(key_of(event));
  EXPECT_EQ(stream_of(sampled), expected);
  EXPECT_LT(sampled.decisions().size(), full.decisions().size());
  EXPECT_FALSE(sampled.decisions().empty());
}

// Admission rejections are visible as requested-but-not-granted events, and
// the cold all-at-resource-0 start trips the herding detector, whose hits
// mirror into RunTelemetry.
TEST(DecisionTrace, AdmissionRejectsAndHerdingFindingsAreReported) {
  Xoshiro256 gen_rng(3);
  const Instance instance = make_uniform_feasible(1500, 24, 0.2, 1.5, gen_rng);
  obs::MemoryDecisionSink sink;
  EngineConfig config = base_config();
  config.telemetry.decisions = &sink;
  config.telemetry.herding_factor = 0.5;  // fire on any multi-user inflow

  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "admission";
  spec.lambda = 1.0;
  const auto protocol = make_protocol(spec);
  Xoshiro256 rng(5);
  const EngineResult result = Engine(config).run(*protocol, state, rng);

  bool saw_reject = false;
  for (const obs::DecisionEvent& event : sink.decisions())
    if (event.requested && !event.granted) {
      saw_reject = true;
      EXPECT_EQ(event.to, event.from);
    }
  EXPECT_TRUE(saw_reject);

  ASSERT_FALSE(sink.findings().size() == 0);
  EXPECT_EQ(result.telemetry.herding_findings, sink.findings().size());
  double max_ratio = 0.0;
  for (const obs::DiagRow& row : sink.diags())
    max_ratio = std::max(max_ratio, row.herding_ratio);
  EXPECT_EQ(result.telemetry.max_herding_ratio, max_ratio);
  for (const obs::DecisionFinding& finding : sink.findings()) {
    EXPECT_EQ(finding.detector, "herding");
    EXPECT_GT(finding.inflow, 1u);
    EXPECT_GT(finding.ratio, 0.5);
  }
}

// The DES path: span tracing must not change the realization, and spans
// group one operation attempt chain — every chain starts with a send, and
// every retry/timeout/ack refers back to it.
TEST(DecisionTrace, AsyncSpansRideTheRunWithoutChangingIt) {
  Xoshiro256 gen_rng(3);
  const Instance instance = make_uniform_feasible(300, 12, 0.4, 1.5, gen_rng);

  EngineConfig off;
  off.seed = 11;
  off.random_start = false;
  const AsyncRunResult reference = run_async_admission(instance, off);

  obs::MemoryDecisionSink sink;
  EngineConfig on;
  on.seed = 11;
  on.random_start = false;
  on.telemetry.decisions = &sink;
  on.telemetry.decision_sample = 2;
  const AsyncRunResult traced = run_async_admission(instance, on);

  EXPECT_EQ(traced.satisfied, reference.satisfied);
  EXPECT_EQ(traced.events, reference.events);
  EXPECT_EQ(traced.virtual_time, reference.virtual_time);
  EXPECT_EQ(traced.counters.messages(), reference.counters.messages());
  EXPECT_EQ(traced.telemetry.span_events, sink.spans().size());
  ASSERT_FALSE(sink.spans().empty());

  std::map<std::uint64_t, std::vector<const obs::SpanEvent*>> chains;
  double last_time = 0.0;
  for (const obs::SpanEvent& event : sink.spans()) {
    // The async sample key is config.seed (the DES has no master reseed).
    EXPECT_TRUE(decision_sampled(on.seed, event.user, 2));
    EXPECT_GE(event.time, last_time);  // emitted in virtual-time order
    last_time = event.time;
    chains[event.span].push_back(&event);
  }
  for (const auto& [span, events] : chains) {
    EXPECT_EQ(events.front()->op, "send") << "span " << span;
    const std::uint64_t user = events.front()->user;
    for (const obs::SpanEvent* event : events)
      EXPECT_EQ(event->user, user) << "span " << span;
  }
}

}  // namespace
}  // namespace qoslb
