#include "core/open/open_system.hpp"

#include <gtest/gtest.h>

namespace qoslb {
namespace {

OpenSystemConfig base_config() {
  OpenSystemConfig config;
  config.num_resources = 16;
  config.arrival_rate = 2.0;
  config.mean_lifetime = 100.0;
  config.q_lo = 0.04;  // thresholds 25
  config.q_hi = 0.05;  // thresholds 20
  config.rounds = 1500;
  config.warmup_rounds = 300;
  config.seed = 7;
  return config;
}

TEST(OpenSystem, PopulationTracksLittlesLaw) {
  // Steady-state population = arrival_rate * mean_lifetime.
  const OpenSystemMetrics metrics = run_open_system(base_config());
  EXPECT_NEAR(metrics.mean_population, 200.0, 30.0);
  EXPECT_GT(metrics.arrivals, 2000u);
  EXPECT_GT(metrics.departures, 1500u);
}

TEST(OpenSystem, LightLoadHasNegligibleViolations) {
  // Offered occupancy ~200 users / 16 resources = 12.5 per resource, well
  // below the 20..25 thresholds: violations should be rare and transient.
  const OpenSystemMetrics metrics = run_open_system(base_config());
  EXPECT_LT(metrics.violation_fraction, 0.02);
  EXPECT_LT(metrics.mean_rounds_to_satisfaction, 3.0);
  EXPECT_LT(metrics.never_satisfied, metrics.arrivals / 20);
}

TEST(OpenSystem, OverloadSaturatesViolations) {
  OpenSystemConfig config = base_config();
  config.arrival_rate = 8.0;  // population ~800 vs capacity ~16*25 = 400
  const OpenSystemMetrics metrics = run_open_system(config);
  EXPECT_GT(metrics.violation_fraction, 0.3);
}

TEST(OpenSystem, ViolationsMonotoneInLoad) {
  double previous = -1.0;
  for (const double rate : {1.0, 4.0, 8.0}) {
    OpenSystemConfig config = base_config();
    config.arrival_rate = rate;
    const OpenSystemMetrics metrics = run_open_system(config);
    EXPECT_GE(metrics.violation_fraction, previous) << "rate=" << rate;
    previous = metrics.violation_fraction;
  }
}

TEST(OpenSystem, DeterministicPerSeed) {
  const OpenSystemMetrics a = run_open_system(base_config());
  const OpenSystemMetrics b = run_open_system(base_config());
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.violation_fraction, b.violation_fraction);
  OpenSystemConfig other = base_config();
  other.seed = 8;
  const OpenSystemMetrics c = run_open_system(other);
  EXPECT_NE(a.arrivals, c.arrivals);
}

TEST(OpenSystem, ZeroArrivalsIsQuietlyEmpty) {
  OpenSystemConfig config = base_config();
  config.arrival_rate = 0.0;
  const OpenSystemMetrics metrics = run_open_system(config);
  EXPECT_EQ(metrics.arrivals, 0u);
  EXPECT_DOUBLE_EQ(metrics.mean_population, 0.0);
  EXPECT_DOUBLE_EQ(metrics.violation_fraction, 0.0);
}

TEST(OpenSystem, RejectsBadConfig) {
  OpenSystemConfig config = base_config();
  config.warmup_rounds = config.rounds;
  EXPECT_THROW(run_open_system(config), std::invalid_argument);
  config = base_config();
  config.num_resources = 1;
  EXPECT_THROW(run_open_system(config), std::invalid_argument);
  config = base_config();
  config.q_lo = -1.0;
  EXPECT_THROW(run_open_system(config), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
