#include "rng/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "rng/xoshiro256.hpp"
#include "rng/philox.hpp"
#include "rng/zipf.hpp"
#include "stats/ttest.hpp"

namespace qoslb {
namespace {

TEST(UniformBelow, ZeroBoundReturnsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(uniform_u64_below(rng, 0), 0u);
}

TEST(UniformBelow, OneBoundReturnsZero) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_u64_below(rng, 1), 0u);
}

class UniformBelowBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformBelowBound, StaysInRangeAndHitsAllValues) {
  const std::uint64_t bound = GetParam();
  Xoshiro256 rng(bound);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = uniform_u64_below(rng, bound);
    ASSERT_LT(v, bound);
    seen.insert(v);
  }
  if (bound <= 16) {
    EXPECT_EQ(seen.size(), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, UniformBelowBound,
                         ::testing::Values(2, 3, 7, 10, 16, 1000, 1ULL << 40));

TEST(UniformBelow, IsRoughlyUniform) {
  Xoshiro256 rng(7);
  std::array<int, 8> counts{};
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[uniform_u64_below(rng, 8)];
  for (const int c : counts) EXPECT_NEAR(c, kDraws / 8, 600);
}

TEST(UniformInt, InclusiveEndpoints) {
  Xoshiro256 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = uniform_int(rng, -2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformReal, UnitIntervalAndMean) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = uniform_real(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(UniformReal, CustomRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = uniform_real(rng, 3.0, 5.0);
    ASSERT_GE(v, 3.0);
    ASSERT_LT(v, 5.0);
  }
}

class BernoulliP : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliP, EmpiricalRateMatches) {
  const double p = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(p * 1e6) + 1);
  int hits = 0;
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i)
    if (bernoulli(rng, p)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Rates, BernoulliP,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.9, 1.0));

TEST(Bernoulli, DegenerateProbabilities) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(rng, 0.0));
    EXPECT_TRUE(bernoulli(rng, 1.0));
    EXPECT_FALSE(bernoulli(rng, -0.5));
    EXPECT_TRUE(bernoulli(rng, 1.5));
  }
}

TEST(Geometric, MeanMatchesTheory) {
  Xoshiro256 rng(17);
  const double p = 0.25;
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(geometric(rng, p));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / kDraws, 3.0, 0.15);
}

TEST(Exponential, MeanMatchesRate) {
  Xoshiro256 rng(19);
  const double lambda = 2.0;
  double sum = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += exponential(rng, lambda);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Poisson, MeanAndNonNegativity) {
  Xoshiro256 rng(23);
  const double mean = 4.0;
  double sum = 0;
  const int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(poisson(rng, mean));
  EXPECT_NEAR(sum / kDraws, mean, 0.1);
}

TEST(Discrete, FollowsWeights) {
  Xoshiro256 rng(29);
  const double weights[] = {1.0, 3.0, 0.0, 4.0};
  std::array<int, 4> counts{};
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i)
    ++counts[discrete(rng, std::span<const double>(weights, 4))];
  EXPECT_NEAR(counts[0], kDraws / 8, 500);
  EXPECT_NEAR(counts[1], 3 * kDraws / 8, 700);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3], kDraws / 2, 700);
}

TEST(Discrete, AllZeroWeightsThrow) {
  Xoshiro256 rng(1);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW(discrete(rng, std::span<const double>(weights, 2)),
               std::invalid_argument);
}

TEST(Shuffle, IsAPermutation) {
  Xoshiro256 rng(31);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  shuffle(rng, items);
  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Shuffle, ActuallyPermutes) {
  Xoshiro256 rng(37);
  std::vector<int> items(64);
  for (int i = 0; i < 64; ++i) items[i] = i;
  shuffle(rng, items);
  int moved = 0;
  for (int i = 0; i < 64; ++i)
    if (items[i] != i) ++moved;
  EXPECT_GT(moved, 32);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Xoshiro256 rng(41);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = sample_without_replacement(rng, 20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (const std::size_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(SampleWithoutReplacement, KEqualsNCoversEverything) {
  Xoshiro256 rng(43);
  const auto sample = sample_without_replacement(rng, 10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SampleWithoutReplacement, KLargerThanNClamped) {
  Xoshiro256 rng(47);
  EXPECT_EQ(sample_without_replacement(rng, 5, 9).size(), 5u);
}

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler zipf(20, 1.2);
  double total = 0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, RankZeroMostLikely) {
  const ZipfSampler zipf(10, 1.0);
  for (std::size_t k = 1; k < zipf.size(); ++k)
    EXPECT_GT(zipf.pmf(0), zipf.pmf(k));
}

TEST(Zipf, ExponentZeroIsUniform) {
  const ZipfSampler zipf(8, 0.0);
  for (std::size_t k = 0; k < 8; ++k) EXPECT_NEAR(zipf.pmf(k), 0.125, 1e-12);
}

TEST(Zipf, SamplesFollowPmf) {
  const ZipfSampler zipf(5, 1.5);
  Xoshiro256 rng(53);
  std::array<int, 5> counts{};
  const int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf(rng)];
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_NEAR(static_cast<double>(counts[k]) / kDraws, zipf.pmf(k), 0.01);
}

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(5, -0.1), std::invalid_argument);
}


TEST(UniformBelow, PassesChiSquareGoodnessOfFit) {
  Xoshiro256 rng(12345);
  constexpr std::size_t kCells = 32;
  constexpr int kDraws = 64000;
  std::vector<double> observed(kCells, 0.0);
  for (int i = 0; i < kDraws; ++i)
    observed[uniform_u64_below(rng, kCells)] += 1.0;
  const std::vector<double> expected(kCells, double(kDraws) / kCells);
  const ChiSquareResult result = chi_square_test(observed, expected);
  EXPECT_GT(result.p_value, 0.001);
}

TEST(PhiloxStream, PassesChiSquareGoodnessOfFit) {
  PhiloxEngine rng(999);
  constexpr std::size_t kCells = 32;
  constexpr int kDraws = 64000;
  std::vector<double> observed(kCells, 0.0);
  for (int i = 0; i < kDraws; ++i)
    observed[uniform_u64_below(rng, kCells)] += 1.0;
  const std::vector<double> expected(kCells, double(kDraws) / kCells);
  EXPECT_GT(chi_square_test(observed, expected).p_value, 0.001);
}

}  // namespace
}  // namespace qoslb
