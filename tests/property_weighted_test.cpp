// Property grid for the weighted model, mirroring property_protocols_test:
// structural consistency, counter sanity, stability on convergence,
// determinism, and the weighted-specific invariant that total weight is
// conserved across every round.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <tuple>

#include "core/weighted/weighted_generators.hpp"
#include "core/weighted/weighted_protocols.hpp"
#include "rng/splitmix64.hpp"

namespace qoslb {
namespace {

struct WeightedCase {
  int protocol;       // 0 = uniform, 1 = admission, 2 = seq-br
  std::size_t classes;
  double slack;
  bool concentrated;
};

std::unique_ptr<WeightedProtocol> build(int kind) {
  switch (kind) {
    case 0: return std::make_unique<WeightedUniformSampling>(0.5);
    case 1: return std::make_unique<WeightedAdmissionControl>();
    default: return std::make_unique<WeightedSequentialBestResponse>();
  }
}

class WeightedGrid : public ::testing::TestWithParam<WeightedCase> {};

TEST_P(WeightedGrid, InvariantsHoldEndToEnd) {
  const WeightedCase& grid = GetParam();

  auto run_once = [&](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    const WeightedInstance instance =
        make_weighted_feasible(120, 10, grid.slack, grid.classes, 1.0, rng);
    WeightedState state = grid.concentrated
                              ? WeightedState::all_on(instance, 0)
                              : WeightedState::random(instance, rng);
    const std::int64_t total_before =
        std::accumulate(state.loads().begin(), state.loads().end(),
                        std::int64_t{0});

    const auto protocol = build(grid.protocol);
    EngineConfig config;
    config.max_rounds = 20000;
    const EngineResult result = Engine(config).run(*protocol, state, rng);

    state.check_invariants();
    const std::int64_t total_after =
        std::accumulate(state.loads().begin(), state.loads().end(),
                        std::int64_t{0});
    EXPECT_EQ(total_before, total_after);  // weight conservation
    EXPECT_EQ(total_after,
              static_cast<std::int64_t>(instance.total_weight()));

    const Counters& c = result.counters;
    EXPECT_EQ(c.grants + c.rejects, c.migrate_requests);
    if (grid.protocol == 1) {
      EXPECT_EQ(c.grants, c.migrations);
    }
    if (result.converged) {
      EXPECT_TRUE(protocol->is_stable(state));
    }
    EXPECT_LE(result.final_satisfied_weight, instance.total_weight());

    return std::make_tuple(result.rounds, result.final_satisfied,
                           result.final_satisfied_weight, c.migrations);
  };

  const auto a = run_once(derive_seed(777, 3));
  const auto b = run_once(derive_seed(777, 3));
  EXPECT_EQ(a, b);
}

std::vector<WeightedCase> make_grid() {
  std::vector<WeightedCase> grid;
  for (int protocol : {0, 1, 2})
    for (std::size_t classes : {1u, 3u, 5u})
      for (double slack : {0.1, 0.4})
        for (bool concentrated : {true, false})
          grid.push_back(WeightedCase{protocol, classes, slack, concentrated});
  return grid;
}

INSTANTIATE_TEST_SUITE_P(Grid, WeightedGrid, ::testing::ValuesIn(make_grid()));

}  // namespace
}  // namespace qoslb
