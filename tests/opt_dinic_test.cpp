#include "opt/dinic.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qoslb {
namespace {

TEST(Dinic, SingleEdge) {
  Dinic flow(2);
  const auto e = flow.add_edge(0, 1, 7);
  EXPECT_EQ(flow.max_flow(0, 1), 7);
  EXPECT_EQ(flow.flow_on(e), 7);
}

TEST(Dinic, SeriesBottleneck) {
  Dinic flow(3);
  flow.add_edge(0, 1, 10);
  flow.add_edge(1, 2, 4);
  EXPECT_EQ(flow.max_flow(0, 2), 4);
}

TEST(Dinic, ParallelPathsAdd) {
  Dinic flow(4);
  flow.add_edge(0, 1, 3);
  flow.add_edge(1, 3, 3);
  flow.add_edge(0, 2, 5);
  flow.add_edge(2, 3, 5);
  EXPECT_EQ(flow.max_flow(0, 3), 8);
}

TEST(Dinic, ClassicCrossNetwork) {
  // CLRS figure-style network with a cross edge; max flow 23.
  Dinic flow(6);
  flow.add_edge(0, 1, 16);
  flow.add_edge(0, 2, 13);
  flow.add_edge(1, 2, 10);
  flow.add_edge(2, 1, 4);
  flow.add_edge(1, 3, 12);
  flow.add_edge(3, 2, 9);
  flow.add_edge(2, 4, 14);
  flow.add_edge(4, 3, 7);
  flow.add_edge(3, 5, 20);
  flow.add_edge(4, 5, 4);
  EXPECT_EQ(flow.max_flow(0, 5), 23);
}

TEST(Dinic, DisconnectedSinkGivesZero) {
  Dinic flow(4);
  flow.add_edge(0, 1, 5);
  EXPECT_EQ(flow.max_flow(0, 3), 0);
}

TEST(Dinic, ZeroCapacityEdge) {
  Dinic flow(2);
  flow.add_edge(0, 1, 0);
  EXPECT_EQ(flow.max_flow(0, 1), 0);
}

TEST(Dinic, BipartiteMatching) {
  // 3 left, 3 right; perfect matching exists.
  // Nodes: 0 = source, 1..3 left, 4..6 right, 7 = sink.
  Dinic flow(8);
  for (int l = 1; l <= 3; ++l) flow.add_edge(0, l, 1);
  for (int r = 4; r <= 6; ++r) flow.add_edge(r, 7, 1);
  flow.add_edge(1, 4, 1);
  flow.add_edge(1, 5, 1);
  flow.add_edge(2, 4, 1);
  flow.add_edge(3, 6, 1);
  EXPECT_EQ(flow.max_flow(0, 7), 3);
}

TEST(Dinic, HallViolationLimitsMatching) {
  // Two left vertices share the single right vertex.
  Dinic flow(5);
  flow.add_edge(0, 1, 1);
  flow.add_edge(0, 2, 1);
  flow.add_edge(1, 3, 1);
  flow.add_edge(2, 3, 1);
  flow.add_edge(3, 4, 1);  // right vertex has matching capacity 1
  EXPECT_EQ(flow.max_flow(0, 4), 1);
}

TEST(Dinic, FlowOnReportsPerEdge) {
  Dinic flow(3);
  const auto a = flow.add_edge(0, 1, 5);
  const auto b = flow.add_edge(1, 2, 3);
  EXPECT_EQ(flow.max_flow(0, 2), 3);
  EXPECT_EQ(flow.flow_on(a), 3);
  EXPECT_EQ(flow.flow_on(b), 3);
}

TEST(Dinic, RejectsBadArguments) {
  EXPECT_THROW(Dinic(1), std::invalid_argument);
  Dinic flow(3);
  EXPECT_THROW(flow.add_edge(0, 9, 1), std::invalid_argument);
  EXPECT_THROW(flow.add_edge(0, 1, -1), std::invalid_argument);
  EXPECT_THROW(flow.max_flow(0, 0), std::invalid_argument);
  EXPECT_THROW(flow.flow_on(0), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
