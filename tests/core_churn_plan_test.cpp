// Deterministic mid-run resource churn (core/churn_plan.hpp + the engine's
// round-boundary replay, docs/faults.md).
//
// Covers: schedule validation (sorted, in-range, liveness-consistent),
// dip/recovery bookkeeping in ChurnTracker, the engine contract that a
// churned run evicts every resident of a failed resource onto survivors and
// reports graceful-degradation metrics, thread/mode invariance of the
// churned realization, convergence gating on pending events, and the
// sequential-only rejection.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/generators.hpp"
#include "obs/metrics.hpp"
#include "qoslb.hpp"

namespace qoslb {
namespace {

Instance test_instance(std::size_t n, std::size_t m, std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  return make_uniform_feasible(n, m, 0.5, 1.5, rng);
}

std::vector<ResourceId> assignment_of(const State& state) {
  std::vector<ResourceId> assignment(state.num_users());
  for (UserId u = 0; u < state.num_users(); ++u)
    assignment[u] = state.resource_of(u);
  return assignment;
}

// ---- plan validation ----

TEST(ChurnPlan, AcceptsAWellFormedSchedule) {
  ChurnPlan plan;
  plan.fail(2, 1).fail(2, 3).recover(10, 1).fail(12, 0).recover(20, 3);
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(ChurnPlan, RejectsUnsortedRounds) {
  ChurnPlan plan;
  plan.fail(10, 1);
  plan.events.push_back({5, 2, ChurnKind::kFail});
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

TEST(ChurnPlan, RejectsOutOfRangeResource) {
  ChurnPlan plan;
  plan.fail(1, 9);
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

TEST(ChurnPlan, RejectsFailingADeadResource) {
  ChurnPlan plan;
  plan.fail(1, 2).fail(5, 2);
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

TEST(ChurnPlan, RejectsKillingTheLastLiveResource) {
  ChurnPlan plan;
  plan.fail(1, 0).fail(2, 1);
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(ChurnPlan, RejectsRecoveringALiveResource) {
  ChurnPlan plan;
  plan.recover(3, 1);
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

// ---- tracker bookkeeping ----

TEST(ChurnTracker, DipDepthAndRecoveryRounds) {
  ChurnTracker tracker;
  tracker.on_failure(10, 100);  // baseline 100 of 200 satisfied
  tracker.on_eviction(7);
  tracker.on_round_end(10, 60, 200);  // dip bottom: 40/200 below baseline
  tracker.on_round_end(11, 80, 200);
  tracker.on_round_end(12, 100, 200);  // back at baseline after 2 rounds
  tracker.on_round_end(13, 150, 200);

  EXPECT_EQ(tracker.stats.failures, 1u);
  EXPECT_EQ(tracker.stats.evicted, 7u);
  EXPECT_DOUBLE_EQ(tracker.stats.max_dip_depth, 0.2);
  EXPECT_EQ(tracker.stats.max_recovery_rounds, 2u);
  EXPECT_FALSE(tracker.stats.dip_open);
}

TEST(ChurnTracker, OverlappingFailureDeepensTheOpenDip) {
  ChurnTracker tracker;
  tracker.on_failure(5, 100);
  tracker.on_round_end(5, 70, 100);
  tracker.on_failure(6, 70);  // second hit while still below baseline
  tracker.on_round_end(6, 40, 100);
  EXPECT_EQ(tracker.stats.failures, 2u);
  EXPECT_DOUBLE_EQ(tracker.stats.max_dip_depth, 0.6);
  EXPECT_TRUE(tracker.in_dip);
  EXPECT_TRUE(tracker.stats.dip_open);
}

TEST(ChurnTracker, RunEndingInsideADipReportsItOpen) {
  ChurnTracker tracker;
  tracker.on_failure(3, 50);
  tracker.on_round_end(3, 20, 100);
  EXPECT_TRUE(tracker.stats.dip_open);
  EXPECT_EQ(tracker.stats.max_recovery_rounds, 0u)
      << "unclosed dips must not contribute a recovery time";
}

// ---- engine replay ----

EngineConfig churned_config() {
  // The failure lands at round 30, after the run has largely settled, so
  // evicting resource 2's residents genuinely dents the satisfied count (a
  // failure during the initial all-on-0 scramble would not dip below its
  // low pre-failure baseline).
  EngineConfig config;
  config.max_rounds = 400;
  config.shard_size = 128;
  config.invariant_check_period = 8;
  config.churn.fail(30, 2).recover(60, 2);
  return config;
}

TEST(EngineChurn, FailureEvictsResidentsAndReportsDegradation) {
  // A tight world (5% slack): losing a sixteenth of the capacity makes some
  // users genuinely unsatisfiable until the resource returns, so the
  // satisfied fraction must visibly dip below its pre-failure baseline.
  Xoshiro256 world_rng(1);
  const Instance instance = make_uniform_feasible(1500, 16, 0.05, 1.5, world_rng);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);
  Xoshiro256 rng(11);
  const EngineResult result =
      Engine(churned_config()).run(*protocol, state, rng);
  state.check_invariants();

  EXPECT_EQ(result.churn.failures, 1u);
  EXPECT_EQ(result.churn.recoveries, 1u);
  EXPECT_GT(result.churn.evicted, 0u)
      << "round 30 of a uniform run must have residents on resource 2";
  EXPECT_GT(result.churn.max_dip_depth, 0.0);
  EXPECT_FALSE(result.churn.dip_open) << "the run must recover";
  EXPECT_TRUE(result.converged);
  for (UserId u = 0; u < state.num_users(); ++u)
    EXPECT_TRUE(state.resource_live(state.resource_of(u)));
}

TEST(EngineChurn, ChurnedRunIsThreadAndModeInvariant) {
  const Instance instance = test_instance(1500, 16);
  ProtocolSpec spec;
  spec.kind = "admission";
  spec.lambda = 1.0;

  std::vector<ResourceId> reference;
  EngineResult reference_result;
  bool have_reference = false;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    for (const EngineMode mode : {EngineMode::kDense, EngineMode::kActive}) {
      State state = State::all_on(instance, 0);
      const auto protocol = make_protocol(spec);
      EngineConfig config = churned_config();
      config.threads = threads;
      config.mode = mode;
      Xoshiro256 rng(11);
      const EngineResult result = Engine(config).run(*protocol, state, rng);
      if (!have_reference) {
        reference = assignment_of(state);
        reference_result = result;
        have_reference = true;
        continue;
      }
      const std::string label =
          "threads=" + std::to_string(threads) +
          (mode == EngineMode::kActive ? " active" : " dense");
      EXPECT_EQ(assignment_of(state), reference) << label;
      EXPECT_EQ(result.rounds, reference_result.rounds) << label;
      EXPECT_EQ(result.counters.migrations,
                reference_result.counters.migrations)
          << label;
      EXPECT_EQ(result.churn.evicted, reference_result.churn.evicted) << label;
      EXPECT_EQ(result.churn.max_dip_depth,
                reference_result.churn.max_dip_depth)
          << label;
    }
  }
}

TEST(EngineChurn, ConvergenceWaitsForPendingEvents) {
  // A comfortably feasible world converges almost immediately — but with a
  // failure scheduled at round 50 the run must keep going, apply it, and
  // re-converge afterwards.
  const Instance instance = test_instance(400, 16);
  State state = State::round_robin(instance);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 1000;
  config.churn.fail(50, 1);
  Xoshiro256 rng(3);
  const EngineResult result = Engine(config).run(*protocol, state, rng);

  EXPECT_GT(result.rounds, 50u)
      << "a pending event must veto early convergence";
  EXPECT_EQ(result.churn.failures, 1u);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(state.resource_live(1));
}

TEST(EngineChurn, SequentialOnlyProtocolsRejectChurn) {
  const Instance instance = test_instance(100, 8);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "seq-br";  // classic step() path, no sharded round support
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.churn.fail(1, 0);
  Xoshiro256 rng(1);
  EXPECT_THROW(Engine(config).run(*protocol, state, rng),
               std::invalid_argument);
}

TEST(EngineChurn, ChurnMetricsReachTheRegistry) {
  const Instance instance = test_instance(800, 16);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);
  obs::MetricsRegistry metrics;
  EngineConfig config = churned_config();
  config.telemetry.metrics = &metrics;
  Xoshiro256 rng(7);
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  ASSERT_EQ(result.churn.failures, 1u);

  const obs::CounterHandle failures = metrics.find_counter("churn/failures");
  ASSERT_TRUE(failures.valid());
  EXPECT_EQ(metrics.counter_value(failures), 1u);
  const obs::CounterHandle evicted = metrics.find_counter("churn/evicted");
  ASSERT_TRUE(evicted.valid());
  EXPECT_EQ(metrics.counter_value(evicted), result.churn.evicted);
  const obs::GaugeHandle dip = metrics.find_gauge("churn/max_dip_depth");
  ASSERT_TRUE(dip.valid());
  EXPECT_DOUBLE_EQ(metrics.gauge_value(dip), result.churn.max_dip_depth);
}

}  // namespace
}  // namespace qoslb
