#include "opt/satisfaction.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(MinResources, EmptyNeedsZero) {
  const GroupingResult g = min_resources_to_satisfy_all({});
  EXPECT_TRUE(g.feasible);
  EXPECT_EQ(g.groups, 0);
}

TEST(MinResources, UniformThresholdPacksTightly) {
  // 9 users with threshold 3 -> 3 groups of 3.
  const GroupingResult g = min_resources_to_satisfy_all(std::vector<int>(9, 3));
  EXPECT_TRUE(g.feasible);
  EXPECT_EQ(g.groups, 3);
}

TEST(MinResources, MixedThresholds) {
  // {4,4,4,4} fits in one group (4 users, min threshold 4).
  EXPECT_EQ(min_resources_to_satisfy_all({4, 4, 4, 4}).groups, 1);
  // {1,1,1} needs three singleton groups.
  EXPECT_EQ(min_resources_to_satisfy_all({1, 1, 1}).groups, 3);
  // {3,1}: block {3} then {1}? Greedy desc: [3,1]: block of size 1 (3>=1 but
  // t[1]=1 < 2 stops growth) -> then {1} -> 2 groups.
  EXPECT_EQ(min_resources_to_satisfy_all({3, 1}).groups, 2);
}

TEST(MinResources, InfeasibleWhenThresholdBelowOne) {
  EXPECT_FALSE(min_resources_to_satisfy_all({2, 0, 3}).feasible);
}

TEST(MinResources, GreedyMatchesBruteForceOnSmallInstances) {
  // Cross-validate greedy block count against the exact optimizer: all users
  // satisfiable with m resources iff max_satisfied == n.
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(uniform_int(rng, 1, 9));
    std::vector<int> thresholds(n);
    for (auto& t : thresholds) t = static_cast<int>(uniform_int(rng, 1, 6));
    const GroupingResult g = min_resources_to_satisfy_all(thresholds);
    ASSERT_TRUE(g.feasible);
    for (int m = 1; m <= 4; ++m) {
      const bool greedy_says = g.groups <= m;
      const bool exact_says = max_satisfied_identical(thresholds, m) == n;
      EXPECT_EQ(greedy_says, exact_says)
          << "n=" << n << " m=" << m << " trial=" << trial;
    }
  }
}

TEST(AllSatisfiable, Wrapper) {
  EXPECT_TRUE(all_satisfiable({3, 3, 3}, 1));
  EXPECT_FALSE(all_satisfiable({1, 1}, 1));
  EXPECT_TRUE(all_satisfiable({1, 1}, 2));
}

TEST(SatisfiedForOccupancies, SimpleCases) {
  // Two users threshold 1, occupancies {1,1}: both satisfied.
  const auto matrix = identical_threshold_matrix({1, 1}, 2);
  EXPECT_EQ(satisfied_for_occupancies(matrix, {1, 1}), 2);
  // Occupancies {2,0}: a resource with 2 users, thresholds 1 -> none satisfied.
  EXPECT_EQ(satisfied_for_occupancies(matrix, {2, 0}), 0);
}

TEST(SatisfiedForOccupancies, FlexibleUsersConserved) {
  // Thresholds {9,2,2,2,1}, occupancies {3,2}: put 9 + two fillers on the
  // 3-resource, the two 2s on the 2-resource -> 1 + 2 = 3 satisfied.
  const auto matrix = identical_threshold_matrix({9, 2, 2, 2, 1}, 2);
  EXPECT_EQ(satisfied_for_occupancies(matrix, {3, 2}), 3);
}

TEST(SatisfiedForOccupancies, RejectsBadOccupancies) {
  const auto matrix = identical_threshold_matrix({1, 1}, 2);
  EXPECT_THROW(satisfied_for_occupancies(matrix, {1, 0}), std::invalid_argument);
  EXPECT_THROW(satisfied_for_occupancies(matrix, {-1, 3}), std::invalid_argument);
}

TEST(MaxSatisfiedIdentical, MatchesBruteForce) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(uniform_int(rng, 1, 7));
    const int m = static_cast<int>(uniform_int(rng, 1, 3));
    std::vector<int> thresholds(n);
    for (auto& t : thresholds) t = static_cast<int>(uniform_int(rng, 0, 5));
    const auto matrix = identical_threshold_matrix(thresholds, m);
    EXPECT_EQ(max_satisfied_identical(thresholds, m),
              max_satisfied_bruteforce(matrix))
        << "trial=" << trial << " n=" << n << " m=" << m;
  }
}

TEST(MaxSatisfiedIdentical, OverloadedInstanceCapped) {
  // 6 users threshold 2 on 1 resource: at most 2 can be satisfied? Load is 6
  // on the only resource -> nobody satisfied.
  EXPECT_EQ(max_satisfied_identical(std::vector<int>(6, 2), 1), 0);
  // With 2 resources: dump 4 users on one, keep 2 on the other -> 2 satisfied.
  EXPECT_EQ(max_satisfied_identical(std::vector<int>(6, 2), 2), 2);
}

TEST(MaxSatisfiedIdentical, GuardsLargeInputs) {
  EXPECT_THROW(max_satisfied_identical(std::vector<int>(65, 1), 2),
               std::invalid_argument);
}

TEST(MaxSatisfiedHeterogeneous, MatchesBruteForce) {
  Xoshiro256 rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(uniform_int(rng, 1, 6));
    const int m = static_cast<int>(uniform_int(rng, 2, 3));
    std::vector<std::vector<int>> matrix(n, std::vector<int>(m));
    for (auto& row : matrix)
      for (auto& t : row) t = static_cast<int>(uniform_int(rng, 0, 4));
    EXPECT_EQ(max_satisfied_heterogeneous(matrix),
              max_satisfied_bruteforce(matrix))
        << "trial=" << trial;
  }
}

TEST(MaxSatisfiedHeterogeneous, FastResourceHostsMore) {
  // Resource 0 admits up to 4 of these users, resource 1 only 1.
  std::vector<std::vector<int>> matrix(5, std::vector<int>{4, 1});
  EXPECT_EQ(max_satisfied_heterogeneous(matrix), 5);
}

TEST(BruteForce, GuardsHugeInputs) {
  const auto matrix = identical_threshold_matrix(std::vector<int>(30, 1), 4);
  EXPECT_THROW(max_satisfied_bruteforce(matrix), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
