#include "util/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qoslb {
namespace {

ArgParser make(std::initializer_list<const char*> args) {
  static std::vector<const char*> storage;
  storage.assign(args.begin(), args.end());
  return ArgParser(static_cast<int>(storage.size()), storage.data());
}

TEST(ArgParser, EqualsSyntax) {
  auto args = make({"prog", "--n=42", "--rate=0.5", "--name=exp1"});
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(args.get_string("name", ""), "exp1");
  args.finish();
}

TEST(ArgParser, SpaceSyntax) {
  auto args = make({"prog", "--n", "7"});
  EXPECT_EQ(args.get_int("n", 0), 7);
  args.finish();
}

TEST(ArgParser, DefaultsWhenAbsent) {
  auto args = make({"prog"});
  EXPECT_EQ(args.get_int("n", 13), 13);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get_string("s", "d"), "d");
  EXPECT_FALSE(args.get_flag("v"));
  args.finish();
}

TEST(ArgParser, BareFlag) {
  auto args = make({"prog", "--csv"});
  EXPECT_TRUE(args.get_flag("csv"));
  args.finish();
}

TEST(ArgParser, FlagWithExplicitValue) {
  auto args = make({"prog", "--csv=false", "--log=true"});
  EXPECT_FALSE(args.get_flag("csv"));
  EXPECT_TRUE(args.get_flag("log"));
  args.finish();
}

TEST(ArgParser, IntList) {
  auto args = make({"prog", "--sizes=8,16,32"});
  const auto sizes = args.get_int_list("sizes", {});
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[2], 32);
  args.finish();
}

TEST(ArgParser, UnknownArgumentFailsAtFinish) {
  auto args = make({"prog", "--typo=1"});
  EXPECT_THROW(args.finish(), std::invalid_argument);
}

TEST(ArgParser, PositionalArgumentRejected) {
  EXPECT_THROW(make({"prog", "positional"}), std::invalid_argument);
}

TEST(ArgParser, BadIntegerRejected) {
  auto args = make({"prog", "--n=4x"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
}

TEST(ArgParser, NegativeNumbersViaEquals) {
  auto args = make({"prog", "--delta=-3"});
  EXPECT_EQ(args.get_int("delta", 0), -3);
  args.finish();
}

}  // namespace
}  // namespace qoslb
