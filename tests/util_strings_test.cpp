#include "util/strings.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qoslb {
namespace {

TEST(Split, BasicFields) {
  const auto fields = split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto fields = split(",x,,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "");
}

TEST(Split, SingleFieldWithoutSeparator) {
  const auto fields = split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  const auto fields = split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, PreservesInnerWhitespace) {
  EXPECT_EQ(trim("  a b  "), "a b");
}

TEST(FormatDouble, IntegersAndFractions) {
  EXPECT_EQ(format_double(12.0), "12");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(-3.25), "-3.25");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(FormatDouble, RejectsBadDigitCounts) {
  EXPECT_THROW(format_double(1.0, -1), std::invalid_argument);
  EXPECT_THROW(format_double(1.0, 18), std::invalid_argument);
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-flag", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ParseIntList, ParsesAndTrims) {
  const auto values = parse_int_list("8, 16 ,32");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], 8);
  EXPECT_EQ(values[1], 16);
  EXPECT_EQ(values[2], 32);
}

TEST(ParseIntList, SkipsEmptyEntries) {
  EXPECT_EQ(parse_int_list("1,,2").size(), 2u);
  EXPECT_TRUE(parse_int_list("").empty());
}

TEST(ParseIntList, RejectsGarbage) {
  EXPECT_THROW(parse_int_list("1,2x,3"), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
