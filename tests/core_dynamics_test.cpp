#include "core/dynamics/quality_game.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/potential.hpp"
#include "core/engine.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(QualityNash, BalancedIdenticalIsNash) {
  const Instance inst = Instance::identical(2, 1.0, std::vector<double>(4, 1.0));
  EXPECT_TRUE(is_quality_nash(State(inst, {0, 0, 1, 1})));
  EXPECT_FALSE(is_quality_nash(State::all_on(inst, 0)));
}

TEST(QualityNash, OffByOneLoadsAreNash) {
  const Instance inst = Instance::identical(2, 1.0, std::vector<double>(3, 1.0));
  // Loads 2 and 1: mover would get load 2 -> quality equal, not strictly
  // better. Nash.
  EXPECT_TRUE(is_quality_nash(State(inst, {0, 0, 1})));
}

TEST(QualityNash, FasterResourceAttracts) {
  const Instance inst({1.0, 4.0}, {0.1, 0.1});
  // Both users on the slow resource: moving to the fast one gives quality
  // 4/1 = 4 > 1/2.
  EXPECT_FALSE(is_quality_nash(State(inst, {0, 0})));
  // Both on the fast resource: 4/2 = 2 each; moving to slow gives 1 < 2. Nash.
  EXPECT_TRUE(is_quality_nash(State(inst, {1, 1})));
}

TEST(BestQualityDeviation, PicksStrictlyBestOnly) {
  const Instance inst = Instance::identical(3, 1.0, std::vector<double>(3, 1.0));
  const State state(inst, {0, 0, 1});
  // User on resource 0 (load 2): resource 2 empty gives quality 1 > 1/2;
  // resource 1 (load 1) gives post-move 1/2 == current: not strict.
  EXPECT_EQ(best_quality_deviation(state, 0), 2u);
  // The lone user on resource 1 has quality 1; everything else is worse.
  EXPECT_EQ(best_quality_deviation(state, 2), kNoResource);
}

TEST(QualityBestResponse, EveryMigrationLowersRosenthalPotential) {
  // The potential-game certificate, checked step by step.
  Xoshiro256 rng(5);
  const Instance inst = make_related_capacities(60, 6, 0.3, 3, rng);
  State state = State::all_on(inst, 0);
  QualityBestResponse protocol;
  Counters counters;
  double potential = rosenthal_potential(state);
  for (int step = 0; step < 500; ++step) {
    const std::uint64_t before = counters.migrations;
    protocol.step(state, rng, counters);
    if (counters.migrations == before) break;  // Nash reached
    const double now = rosenthal_potential(state);
    ASSERT_LT(now, potential) << "step " << step;
    potential = now;
  }
  EXPECT_TRUE(is_quality_nash(state));
}

TEST(QualityBestResponse, ConvergesViaRunner) {
  Xoshiro256 rng(7);
  const Instance inst = Instance::identical(8, 1.0, std::vector<double>(128, 1e-3));
  State state = State::all_on(inst, 0);
  QualityBestResponse protocol;
  EngineConfig config;
  config.max_rounds = 100000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(state.max_load() - state.min_load(), 1);
}

TEST(QualityBestResponse, RoundRobinOrderAlsoConverges) {
  Xoshiro256 rng(9);
  const Instance inst = Instance::identical(5, 1.0, std::vector<double>(60, 1e-3));
  State state = State::all_on(inst, 2);
  QualityBestResponse protocol(QualityBestResponse::Order::kRoundRobin);
  EngineConfig config;
  config.max_rounds = 100000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_quality_nash(state));
}

TEST(QualitySampling, ConvergesToNashOnIdentical) {
  Xoshiro256 rng(11);
  const Instance inst = Instance::identical(16, 1.0, std::vector<double>(512, 1e-3));
  State state = State::all_on(inst, 0);
  QualitySampling protocol;
  EngineConfig config;
  config.max_rounds = 100000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(state.max_load() - state.min_load(), 1);
}

TEST(QualitySampling, ConvergesOnRelatedCapacities) {
  Xoshiro256 rng(13);
  const Instance inst = make_related_capacities(200, 8, 0.3, 3, rng);
  State state = State::all_on(inst, 0);
  QualitySampling protocol;
  EngineConfig config;
  config.max_rounds = 200000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_quality_nash(state));
}

TEST(QualityVsSatisfaction, NashRefinesSatisfactionOnFeasible) {
  // On a feasible instance, a quality Nash state satisfies everyone whose
  // requirement is below the Nash share — with the generator's slack, that
  // is everyone. Satisfaction equilibria are coarser (they stop earlier).
  Xoshiro256 rng(17);
  const Instance inst = make_uniform_feasible(120, 8, 0.3, 1.0, rng);
  State state = State::all_on(inst, 0);
  QualityBestResponse protocol;
  EngineConfig config;
  config.max_rounds = 100000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
}

}  // namespace
}  // namespace qoslb
