// The telemetry determinism contract (docs/observability.md): attaching
// metrics, trace sinks, and a clock must leave every simulation output —
// assignments, round counts, counters, trajectories — bit-identical to the
// telemetry-off run, across thread counts and engine modes, on the sync,
// weighted, and async paths. Plus the accounting itself: trace rows per
// round, metrics mirroring the run counters, trace_every thinning, and
// virtual-time phase attribution for the DES.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/potential.hpp"
#include "net/generators.hpp"
#include "qoslb.hpp"

namespace qoslb {
namespace {

Instance test_instance(std::size_t n, std::size_t m) {
  Xoshiro256 rng(1);
  return make_uniform_feasible(n, m, 0.5, 1.5, rng);
}

std::vector<ResourceId> assignment_of(const State& state) {
  std::vector<ResourceId> assignment(state.num_users());
  for (UserId u = 0; u < state.num_users(); ++u)
    assignment[u] = state.resource_of(u);
  return assignment;
}

struct ShardedCase {
  std::string kind;
  double lambda;
};

const std::vector<ShardedCase>& sharded_cases() {
  static const std::vector<ShardedCase> kCases = {
      {"uniform", 0.5},      {"adaptive", 1.0},      {"admission", 1.0},
      {"nbr-uniform", 0.5},  {"nbr-admission", 1.0}, {"berenbrink", 1.0}};
  return kCases;
}

std::string case_name(const ::testing::TestParamInfo<ShardedCase>& info) {
  std::string name = info.param.kind;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

EngineConfig base_config(const obs::Telemetry& telemetry) {
  EngineConfig config;
  config.shard_size = 128;
  config.max_rounds = 400;
  config.record_trajectory = true;
  config.telemetry = telemetry;
  return config;
}

class TelemetryInvariance : public ::testing::TestWithParam<ShardedCase> {};

// The acceptance gate: telemetry-off reference vs telemetry-on runs at
// threads {1, 2, 4, 8} in dense and active modes.
TEST_P(TelemetryInvariance, SinksOnAndOffProduceIdenticalRuns) {
  const ShardedCase& param = GetParam();
  const Instance instance = test_instance(2000, 32);
  const Graph ring = make_ring(32);
  const auto make = [&] {
    ProtocolSpec spec;
    spec.kind = param.kind;
    spec.lambda = param.lambda;
    spec.graph = &ring;
    return make_protocol(spec);
  };

  // Reference: telemetry off, dense, one thread.
  std::vector<ResourceId> reference;
  EngineResult reference_result;
  {
    State state = State::all_on(instance, 0);
    const auto protocol = make();
    Xoshiro256 rng(77);
    reference_result =
        Engine(base_config(obs::Telemetry{})).run(*protocol, state, rng);
    reference = assignment_of(state);
    EXPECT_FALSE(reference_result.telemetry.enabled);
  }

  obs::SteadyClock clock;
  for (const EngineMode mode : {EngineMode::kDense, EngineMode::kActive}) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      obs::MetricsRegistry metrics;
      obs::MemoryTraceSink sink;
      obs::Telemetry telemetry;
      telemetry.metrics = &metrics;
      telemetry.sink = &sink;
      telemetry.clock = &clock;

      State state = State::all_on(instance, 0);
      const auto protocol = make();
      Xoshiro256 rng(77);
      EngineConfig config = base_config(telemetry);
      config.mode = mode;
      config.threads = threads;
      const EngineResult result = Engine(config).run(*protocol, state, rng);

      const std::string label = param.kind +
                                (mode == EngineMode::kActive ? " active"
                                                             : " dense") +
                                " threads=" + std::to_string(threads);
      EXPECT_EQ(assignment_of(state), reference) << label;
      EXPECT_EQ(result.rounds, reference_result.rounds) << label;
      EXPECT_EQ(result.converged, reference_result.converged) << label;
      EXPECT_EQ(result.final_satisfied, reference_result.final_satisfied)
          << label;
      EXPECT_EQ(result.unsatisfied_trajectory,
                reference_result.unsatisfied_trajectory)
          << label;
      EXPECT_EQ(result.counters.migrations, reference_result.counters.migrations)
          << label;
      EXPECT_EQ(result.counters.probes, reference_result.counters.probes)
          << label;

      // The accounting contract: one row per executed round plus the
      // round-0 snapshot, identical across every (mode, threads) pair.
      EXPECT_TRUE(result.telemetry.enabled) << label;
      EXPECT_EQ(result.telemetry.trace_rows, result.rounds + 1) << label;
      EXPECT_EQ(sink.rows().size(), result.rounds + 1) << label;
      ASSERT_EQ(sink.runs().size(), 1u) << label;
      EXPECT_EQ(sink.runs()[0].threads, result.threads_used) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShardedProtocols, TelemetryInvariance,
                         ::testing::ValuesIn(sharded_cases()), case_name);

TEST(Telemetry, MetricsMirrorTheRunCounters) {
  const Instance instance = test_instance(800, 16);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);

  obs::MetricsRegistry metrics;
  obs::SteadyClock clock;
  obs::Telemetry telemetry;
  telemetry.metrics = &metrics;
  telemetry.clock = &clock;
  EngineConfig config = base_config(telemetry);
  Xoshiro256 rng(5);
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  ASSERT_TRUE(result.converged);

  const auto counter = [&](const char* name) {
    const obs::CounterHandle handle = metrics.find_counter(name);
    EXPECT_TRUE(handle.valid()) << name;
    return handle.valid() ? metrics.counter_value(handle) : 0;
  };
  EXPECT_EQ(counter("engine/rounds"), result.counters.rounds);
  EXPECT_EQ(counter("engine/migrations"), result.counters.migrations);
  EXPECT_EQ(counter("engine/probes"), result.counters.probes);
  EXPECT_EQ(counter("engine/messages"), result.counters.messages());
  EXPECT_EQ(counter("trace/rows"), 0u);  // no sink attached
  EXPECT_EQ(metrics.gauge_value(metrics.find_gauge("engine/threads")),
            static_cast<double>(result.threads_used));
  EXPECT_EQ(metrics.gauge_value(metrics.find_gauge("state/unsatisfied")), 0.0);
  EXPECT_EQ(metrics.gauge_value(metrics.find_gauge("state/potential")),
            rosenthal_potential(state));

  // The active-set histogram saw every executed round.
  const obs::HistogramHandle hist =
      metrics.find_histogram("engine/active_set_size");
  ASSERT_TRUE(hist.valid());
  EXPECT_EQ(metrics.histogram_data(hist).total(), result.rounds);

  // Phase timers ran on the driving thread: one step entry per round.
  EXPECT_EQ(result.telemetry.phases[obs::Phase::kStep].count, result.rounds);
  EXPECT_GE(result.telemetry.phases[obs::Phase::kSatisfactionCheck].count,
            result.rounds);
}

TEST(Telemetry, TraceEveryThinsRowsButKeepsSnapshotAndFinal) {
  const Instance instance = test_instance(800, 16);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.05;  // light damping: enough rounds to exercise thinning

  // Reference run to learn the round count.
  std::uint64_t rounds = 0;
  {
    State state = State::all_on(instance, 0);
    const auto protocol = make_protocol(spec);
    Xoshiro256 rng(5);
    rounds = Engine(base_config(obs::Telemetry{}))
                 .run(*protocol, state, rng)
                 .rounds;
  }
  ASSERT_GT(rounds, 7u);

  obs::MemoryTraceSink sink;
  obs::Telemetry telemetry;
  telemetry.sink = &sink;
  telemetry.trace_every = 7;
  State state = State::all_on(instance, 0);
  const auto protocol = make_protocol(spec);
  Xoshiro256 rng(5);
  const EngineResult result =
      Engine(base_config(telemetry)).run(*protocol, state, rng);
  EXPECT_EQ(result.rounds, rounds);

  // Expected rows: round 0, every 7th round, and the final round always.
  std::vector<std::uint64_t> expected = {0};
  for (std::uint64_t r = 7; r <= rounds; r += 7) expected.push_back(r);
  if (expected.back() != rounds) expected.push_back(rounds);
  std::vector<std::uint64_t> got;
  for (const obs::TraceRow& row : sink.rows()) got.push_back(row.round);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(result.telemetry.trace_rows, expected.size());
}

TEST(Telemetry, AsyncRunsAreUnchangedAndTimeEventDispatchVirtually) {
  Xoshiro256 rng(3);
  const Instance instance = make_uniform_feasible(300, 12, 0.4, 1.5, rng);

  EngineConfig off;
  off.seed = 11;
  off.random_start = false;
  const AsyncRunResult reference = run_async_admission(instance, off);
  EXPECT_FALSE(reference.telemetry.enabled);

  obs::MetricsRegistry metrics;
  EngineConfig on;
  on.seed = 11;
  on.random_start = false;
  on.telemetry.metrics = &metrics;
  // The Engine facade is the metrics-exporting async entry point.
  const EngineResult result = Engine(on).run_async_admission(instance);

  EXPECT_EQ(result.final_satisfied, reference.satisfied);
  EXPECT_EQ(result.events, reference.events);
  EXPECT_EQ(result.virtual_time, reference.virtual_time);
  EXPECT_EQ(result.counters.messages(), reference.counters.messages());

  // kEventDispatch is measured against the DES virtual clock: its seconds
  // are the run's virtual span and its count the delivered events.
  const obs::PhaseStat& dispatch =
      result.telemetry.phases[obs::Phase::kEventDispatch];
  EXPECT_DOUBLE_EQ(dispatch.seconds, result.virtual_time);
  EXPECT_EQ(dispatch.count, result.events);
  EXPECT_EQ(metrics.counter_value(metrics.find_counter("des/events")),
            result.events);
}

TEST(Telemetry, WeightedRunsFillMetricsWithoutTraceRows) {
  Xoshiro256 rng(9);
  const WeightedInstance instance =
      make_weighted_feasible(100, 8, 0.3, 4, 1.0, rng);
  WeightedAdmissionControl protocol;
  WeightedState state = WeightedState::all_on(instance, 0);

  obs::MetricsRegistry metrics;
  obs::SteadyClock clock;
  EngineConfig config;
  config.max_rounds = 100000;
  config.telemetry.metrics = &metrics;
  config.telemetry.clock = &clock;
  const EngineResult result = Engine(config).run(protocol, state, rng);

  EXPECT_TRUE(result.telemetry.enabled);
  EXPECT_EQ(result.telemetry.trace_rows, 0u);
  EXPECT_EQ(metrics.counter_value(metrics.find_counter("engine/rounds")),
            result.counters.rounds);
  EXPECT_GT(result.telemetry.phases[obs::Phase::kStep].count, 0u);
}

}  // namespace
}  // namespace qoslb
