// Engine-facade run semantics (termination, trajectories, per-round trace
// rows) and experiment aggregation. Historically this file tested the
// run_protocol/TraceRecorder shims; those are gone and the same contracts now
// hold directly on Engine + obs::MemoryTraceSink.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/generators.hpp"
#include "core/protocols/admission_control.hpp"
#include "core/protocols/uniform_sampling.hpp"
#include "obs/trace_sink.hpp"

namespace qoslb {
namespace {

TEST(Runner, AlreadyStableTakesZeroRounds) {
  const Instance inst = Instance::identical(2, 1.0, {0.5, 0.5});
  State state(inst, {0, 1});
  Xoshiro256 rng(1);
  AdmissionControl protocol;
  const EngineResult result = Engine().run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Runner, MaxRoundsCapsRun) {
  const Instance inst = make_herding(60);
  State state = State::all_on(inst, 0);
  Xoshiro256 rng(2);
  UniformSampling protocol(1.0, 8);  // oscillates forever
  EngineConfig config;
  config.max_rounds = 25;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 25u);
  EXPECT_EQ(result.counters.rounds, 25u);
}

TEST(Runner, TrajectoryRecordsEveryRound) {
  Xoshiro256 rng(3);
  const Instance inst = make_uniform_feasible(60, 6, 0.5, 1.0, rng);
  State state = State::all_on(inst, 0);
  AdmissionControl protocol;
  EngineConfig config;
  config.record_trajectory = true;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.unsatisfied_trajectory.size(), result.rounds);
  if (!result.unsatisfied_trajectory.empty()) {
    EXPECT_EQ(result.unsatisfied_trajectory.back(), 0u);
  }
}

TEST(Runner, StuckEquilibriumReportedConvergedNotSatisfied) {
  // Infeasible: three threshold-1 users, two resources.
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0, 1.0});
  State state(inst, {0, 0, 1});
  Xoshiro256 rng(4);
  AdmissionControl protocol;
  const EngineResult result = Engine().run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.all_satisfied);
  // Only the lone user on resource 1 is satisfied; the two users sharing
  // resource 0 (load 2 > threshold 1) are stuck.
  EXPECT_EQ(result.final_satisfied, 1u);
}

TEST(Runner, FinalSatisfiedMatchesState) {
  Xoshiro256 rng(5);
  const Instance inst = make_uniform_feasible(40, 4, 0.5, 1.0, rng);
  State state = State::random(inst, rng);
  AdmissionControl protocol;
  const EngineResult result = Engine().run(protocol, state, rng);
  EXPECT_EQ(result.final_satisfied, state.count_satisfied());
}

// ---- per-round trace rows (the trace sink succeeded the old recorder) ----

TEST(Trace, RecordsRoundZeroSnapshot) {
  Xoshiro256 rng(6);
  const Instance inst = make_uniform_feasible(30, 3, 0.5, 1.0, rng);
  State state = State::all_on(inst, 0);
  AdmissionControl protocol;
  obs::MemoryTraceSink sink;
  EngineConfig config;
  config.telemetry.sink = &sink;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  const auto& rows = sink.rows();
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows.front().round, 0u);
  EXPECT_EQ(rows.front().migrations, 0u);
  EXPECT_EQ(rows.back().unsatisfied, 0u);
  // Rounds strictly increasing, cumulative counters non-decreasing.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].round, rows[i - 1].round + 1);
    EXPECT_GE(rows[i].migrations, rows[i - 1].migrations);
    EXPECT_GE(rows[i].messages, rows[i - 1].messages);
  }
}

TEST(Trace, StopsImmediatelyWhenStable) {
  const Instance inst = Instance::identical(2, 1.0, {0.5, 0.5});
  State state(inst, {0, 1});
  Xoshiro256 rng(8);
  AdmissionControl protocol;
  obs::MemoryTraceSink sink;
  EngineConfig config;
  config.telemetry.sink = &sink;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(sink.rows().size(), 1u);  // just the round-0 snapshot
}

// ---- aggregation ----

TEST(Aggregate, DeterministicAndComplete) {
  const auto body = [](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    const Instance inst = make_uniform_feasible(50, 5, 0.5, 1.0, rng);
    State state = State::random(inst, rng);
    AdmissionControl protocol;
    ReplicatedRun run;
    run.result = Engine().run(protocol, state, rng);
    run.num_users = inst.num_users();
    return run;
  };
  const AggregatedRuns a = aggregate_runs(11, 8, body);
  const AggregatedRuns b = aggregate_runs(11, 8, body);
  EXPECT_EQ(a.replications, 8u);
  EXPECT_DOUBLE_EQ(a.converged_fraction, 1.0);
  EXPECT_DOUBLE_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_DOUBLE_EQ(a.satisfied_fraction.mean(), 1.0);
  EXPECT_GE(a.rounds_max, a.rounds_p95);
  EXPECT_GE(a.rounds_p95, 0.0);
}

TEST(Aggregate, RejectsZeroReplications) {
  EXPECT_THROW(
      aggregate_runs(1, 0, [](std::uint64_t) { return ReplicatedRun{}; }),
      std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
