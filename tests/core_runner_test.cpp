#include "core/runner.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/protocols/admission_control.hpp"
#include "core/protocols/uniform_sampling.hpp"
#include "core/trace.hpp"
#include "core/experiment.hpp"

#include <sstream>

namespace qoslb {
namespace {

TEST(Runner, AlreadyStableTakesZeroRounds) {
  const Instance inst = Instance::identical(2, 1.0, {0.5, 0.5});
  State state(inst, {0, 1});
  Xoshiro256 rng(1);
  AdmissionControl protocol;
  const RunResult result = run_protocol(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(Runner, MaxRoundsCapsRun) {
  const Instance inst = make_herding(60);
  State state = State::all_on(inst, 0);
  Xoshiro256 rng(2);
  UniformSampling protocol(1.0, 8);  // oscillates forever
  RunConfig config;
  config.max_rounds = 25;
  const RunResult result = run_protocol(protocol, state, rng, config);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 25u);
  EXPECT_EQ(result.counters.rounds, 25u);
}

TEST(Runner, TrajectoryRecordsEveryRound) {
  Xoshiro256 rng(3);
  const Instance inst = make_uniform_feasible(60, 6, 0.5, 1.0, rng);
  State state = State::all_on(inst, 0);
  AdmissionControl protocol;
  RunConfig config;
  config.record_trajectory = true;
  const RunResult result = run_protocol(protocol, state, rng, config);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.unsatisfied_trajectory.size(), result.rounds);
  if (!result.unsatisfied_trajectory.empty()) {
    EXPECT_EQ(result.unsatisfied_trajectory.back(), 0u);
  }
}

TEST(Runner, StuckEquilibriumReportedConvergedNotSatisfied) {
  // Infeasible: three threshold-1 users, two resources.
  const Instance inst = Instance::identical(2, 1.0, {1.0, 1.0, 1.0});
  State state(inst, {0, 0, 1});
  Xoshiro256 rng(4);
  AdmissionControl protocol;
  const RunResult result = run_protocol(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.all_satisfied);
  // Only the lone user on resource 1 is satisfied; the two users sharing
  // resource 0 (load 2 > threshold 1) are stuck.
  EXPECT_EQ(result.final_satisfied, 1u);
}

TEST(Runner, FinalSatisfiedMatchesState) {
  Xoshiro256 rng(5);
  const Instance inst = make_uniform_feasible(40, 4, 0.5, 1.0, rng);
  State state = State::random(inst, rng);
  AdmissionControl protocol;
  const RunResult result = run_protocol(protocol, state, rng);
  EXPECT_EQ(result.final_satisfied, state.count_satisfied());
}

// ---- trace ----

TEST(Trace, RecordsRoundZeroSnapshot) {
  Xoshiro256 rng(6);
  const Instance inst = make_uniform_feasible(30, 3, 0.5, 1.0, rng);
  State state = State::all_on(inst, 0);
  AdmissionControl protocol;
  TraceRecorder recorder;
  const auto records = recorder.run(protocol, state, rng, 1000);
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records.front().round, 0u);
  EXPECT_EQ(records.front().migrations, 0u);
  EXPECT_EQ(records.back().unsatisfied, 0u);
  // Rounds strictly increasing, cumulative counters non-decreasing.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].round, records[i - 1].round + 1);
    EXPECT_GE(records[i].migrations, records[i - 1].migrations);
    EXPECT_GE(records[i].messages, records[i - 1].messages);
  }
}

TEST(Trace, CsvHasHeaderAndRows) {
  Xoshiro256 rng(7);
  const Instance inst = make_uniform_feasible(20, 2, 0.5, 1.0, rng);
  State state = State::all_on(inst, 0);
  AdmissionControl protocol;
  TraceRecorder recorder;
  const auto records = recorder.run(protocol, state, rng, 1000);
  std::ostringstream out;
  TraceRecorder::write_csv(records, out);
  const std::string text = out.str();
  EXPECT_EQ(text.find("round,unsatisfied"), 0u);
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, records.size() + 1);
}

TEST(Trace, StopsImmediatelyWhenStable) {
  const Instance inst = Instance::identical(2, 1.0, {0.5, 0.5});
  State state(inst, {0, 1});
  Xoshiro256 rng(8);
  AdmissionControl protocol;
  TraceRecorder recorder;
  const auto records = recorder.run(protocol, state, rng, 1000);
  EXPECT_EQ(records.size(), 1u);  // just the round-0 snapshot
}

// ---- aggregation ----

TEST(Aggregate, DeterministicAndComplete) {
  const auto body = [](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    const Instance inst = make_uniform_feasible(50, 5, 0.5, 1.0, rng);
    State state = State::random(inst, rng);
    AdmissionControl protocol;
    ReplicatedRun run;
    run.result = run_protocol(protocol, state, rng);
    run.num_users = inst.num_users();
    return run;
  };
  const AggregatedRuns a = aggregate_runs(11, 8, body);
  const AggregatedRuns b = aggregate_runs(11, 8, body);
  EXPECT_EQ(a.replications, 8u);
  EXPECT_DOUBLE_EQ(a.converged_fraction, 1.0);
  EXPECT_DOUBLE_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_DOUBLE_EQ(a.satisfied_fraction.mean(), 1.0);
  EXPECT_GE(a.rounds_max, a.rounds_p95);
  EXPECT_GE(a.rounds_p95, 0.0);
}

TEST(Aggregate, RejectsZeroReplications) {
  EXPECT_THROW(
      aggregate_runs(1, 0, [](std::uint64_t) { return ReplicatedRun{}; }),
      std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
