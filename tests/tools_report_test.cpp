// qoslb-report analysis-library tests: artifact classification, schema-drift
// detection, aggregate math, and a byte-exact golden render over the
// checked-in fixture artifacts in tests/report_fixtures/ — the same files CI
// feeds the standalone tool.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/report/report.hpp"
#include "util/json.hpp"

namespace qoslb::report {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(QOSLB_REPORT_FIXTURES_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Ingest a fixture under its basename so rendered paths stay stable.
void ingest_fixture(const std::string& name, Report& report) {
  ingest_text(name, read_file(fixture_path(name)), report);
}

Report full_fixture_report() {
  Report report;
  ingest_fixture("trace_a.jsonl", report);
  ingest_fixture("trace_b.jsonl", report);
  ingest_fixture("metrics_a.jsonl", report);
  ingest_fixture("metrics_b.jsonl", report);
  ingest_fixture("decisions.jsonl", report);
  return report;
}

TEST(Report, ClassifiesAllThreeArtifactShapes) {
  const Report report = full_fixture_report();
  EXPECT_TRUE(report.schema_issues.empty());
  ASSERT_EQ(report.metrics.size(), 2u);
  ASSERT_EQ(report.traces.size(), 2u);
  ASSERT_EQ(report.decisions.size(), 1u);

  const TraceArtifact& trace = report.traces[0];
  EXPECT_EQ(trace.protocol, "uniform(lambda=0.5)");
  EXPECT_EQ(trace.users, 100u);
  EXPECT_EQ(trace.rows(), 4u);
  EXPECT_EQ(trace.last_round(), 3u);
  EXPECT_EQ(trace.rounds_to_satisfied(), 3u);
  EXPECT_EQ(trace.total_migrations(), 75u);
  EXPECT_EQ(trace.total_messages(), 140u);
  EXPECT_TRUE(trace.saw_end);

  EXPECT_EQ(report.metrics[0].rows.size(), 7u);
  EXPECT_EQ(report.metrics[0].rows[0].name, "engine/rounds");
  EXPECT_EQ(report.metrics[0].rows[0].value, 3.0);
}

TEST(Report, DecisionAggregatesAndFindings) {
  const Report report = full_fixture_report();
  ASSERT_EQ(report.decisions.size(), 1u);
  const DecisionsArtifact& artifact = report.decisions[0];
  EXPECT_EQ(artifact.sample_every, 2u);
  EXPECT_EQ(artifact.decisions, 3u);
  EXPECT_EQ(artifact.spans, 3u);
  EXPECT_EQ(artifact.requested, 2u);
  EXPECT_EQ(artifact.granted, 1u);
  EXPECT_EQ(artifact.retries, 1u);
  EXPECT_EQ(artifact.timeouts, 0u);
  EXPECT_EQ(artifact.max_herding_ratio, 6.0);
  EXPECT_EQ(artifact.final_l_inf, 4.0);
  EXPECT_EQ(artifact.final_l2, 2.25);
  ASSERT_EQ(artifact.findings.size(), 1u);
  EXPECT_EQ(artifact.findings[0].resource, 3);
  EXPECT_EQ(artifact.findings[0].ratio, 6.0);
  EXPECT_EQ(report.total_findings(), 1u);
  // Findings without drift gate at 1.
  EXPECT_EQ(exit_code(report), 1);
}

TEST(Report, GoldenMarkdownRender) {
  const Report report = full_fixture_report();
  EXPECT_EQ(render_markdown(report), read_file(fixture_path("golden_report.md")));
}

TEST(Report, RenderJsonRoundTripsThroughTheParser) {
  const Report report = full_fixture_report();
  const json::Value doc = json::parse(render_json(report));
  EXPECT_EQ(doc.find("exit")->as_number(), 1.0);
  EXPECT_EQ(doc.find("findings")->as_number(), 1.0);
  EXPECT_EQ(doc.find("traces")->items().size(), 2u);
  EXPECT_EQ(doc.find("decisions")
                ->items()[0]
                .find("max_herding_ratio")
                ->as_number(),
            6.0);
}

TEST(Report, UnknownKeyIsSchemaDriftAndGatesAt2) {
  Report report;
  ingest_fixture("drift.jsonl", report);
  ASSERT_FALSE(report.schema_issues.empty());
  EXPECT_NE(report.schema_issues[0].message.find("surprise"),
            std::string::npos);
  EXPECT_EQ(report.schema_issues[0].line, 2u);
  EXPECT_EQ(exit_code(report), 2);
}

TEST(Report, MissingRequiredKeyIsSchemaDrift) {
  Report report;
  ingest_text("m.jsonl", "{\"metric\":\"a\",\"type\":\"counter\"}\n", report);
  ASSERT_EQ(report.schema_issues.size(), 1u);
  EXPECT_NE(report.schema_issues[0].message.find("value"), std::string::npos);
}

TEST(Report, MissingEndMarkerIsSchemaDrift) {
  Report report;
  ingest_text("t.jsonl",
              "{\"event\":\"begin\",\"protocol\":\"p\",\"users\":1,"
              "\"resources\":1,\"seed\":1,\"threads\":1,\"mode\":\"dense\"}\n",
              report);
  ASSERT_EQ(report.schema_issues.size(), 1u);
  EXPECT_NE(report.schema_issues[0].message.find("end marker"),
            std::string::npos);
}

TEST(Report, EndCountMismatchIsSchemaDrift) {
  Report report;
  ingest_text(
      "d.jsonl",
      "{\"kind\":\"begin\",\"protocol\":\"p\",\"users\":1,\"resources\":1,"
      "\"seed\":1,\"threads\":1,\"mode\":\"dense\",\"sample_every\":1}\n"
      "{\"kind\":\"end\",\"decisions\":7,\"spans\":0,\"findings\":0}\n",
      report);
  ASSERT_EQ(report.schema_issues.size(), 1u);
  EXPECT_NE(report.schema_issues[0].message.find("disagrees"),
            std::string::npos);
}

TEST(Report, MultiBlockBenchArtifactAggregatesAcrossBlocks) {
  // Bench decision artifacts hold one begin/end block per (rep, mode); the
  // end-count cross-check is per block while aggregates span the file.
  const std::string block_a =
      "{\"kind\":\"begin\",\"protocol\":\"p\",\"users\":4,\"resources\":2,"
      "\"seed\":1,\"threads\":1,\"mode\":\"dense\",\"sample_every\":2}\n"
      "{\"kind\":\"decision\",\"round\":1,\"user\":0,\"from\":0,\"probe\":1,"
      "\"target\":1,\"to\":1,\"threshold\":3,\"requested\":true,"
      "\"granted\":true,\"satisfied_before\":false,\"satisfied_after\":true}\n"
      "{\"kind\":\"end\",\"decisions\":1,\"spans\":0,\"findings\":0}\n";
  const std::string block_b =
      "{\"kind\":\"begin\",\"protocol\":\"p\",\"users\":4,\"resources\":2,"
      "\"seed\":1,\"threads\":1,\"mode\":\"active\",\"sample_every\":2}\n"
      "{\"kind\":\"decision\",\"round\":1,\"user\":2,\"from\":1,\"probe\":0,"
      "\"target\":0,\"to\":0,\"threshold\":3,\"requested\":true,"
      "\"granted\":true,\"satisfied_before\":false,\"satisfied_after\":true}\n"
      "{\"kind\":\"end\",\"decisions\":1,\"spans\":0,\"findings\":0}\n";
  Report report;
  ingest_text("bench.jsonl", block_a + block_b, report);
  EXPECT_TRUE(report.schema_issues.empty());
  ASSERT_EQ(report.decisions.size(), 1u);
  EXPECT_EQ(report.decisions[0].decisions, 2u);
  EXPECT_EQ(report.decisions[0].mode, "active");  // last block's header
}

TEST(Report, MalformedAndUnclassifiableInputIsReported) {
  Report report;
  ingest_text("bad.jsonl", "not json at all\n", report);
  ingest_text("odd.jsonl", "{\"what\":1}\n", report);
  ingest_text("empty.jsonl", "\n\n", report);
  EXPECT_EQ(report.schema_issues.size(), 3u);
  EXPECT_EQ(exit_code(report), 2);
  Report missing;
  ingest_file("/nonexistent/artifact.jsonl", missing);
  ASSERT_EQ(missing.schema_issues.size(), 1u);
  EXPECT_EQ(missing.schema_issues[0].line, 0u);
}

TEST(Report, CleanArtifactsGateAtZero) {
  Report report;
  ingest_fixture("metrics_a.jsonl", report);
  ingest_fixture("trace_a.jsonl", report);
  EXPECT_TRUE(report.schema_issues.empty());
  EXPECT_EQ(report.total_findings(), 0u);
  EXPECT_EQ(exit_code(report), 0);
  const std::string markdown = render_markdown(report);
  EXPECT_NE(markdown.find("Verdict: CLEAN (exit 0)"), std::string::npos);
}

}  // namespace
}  // namespace qoslb::report
