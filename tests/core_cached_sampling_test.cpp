#include "core/protocols/cached_sampling.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/protocols/uniform_sampling.hpp"
#include "core/engine.hpp"

namespace qoslb {
namespace {

TEST(CachedSampling, ConvergesLikeUniform) {
  Xoshiro256 rng(1);
  const Instance instance = make_uniform_feasible(256, 16, 0.3, 1.3, rng);
  State state = State::all_on(instance, 0);
  CachedSampling protocol(0.5, /*ttl=*/2);
  EngineConfig config;
  config.max_rounds = 50000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
}

TEST(CachedSampling, SharedRoundCacheSavesProbes) {
  // On the same scenario, the ttl=0 cache (one probe per touched resource
  // per round) must spend strictly fewer probes than per-user probing.
  auto run_with = [](auto&& protocol) {
    Xoshiro256 rng(3);
    const Instance instance = make_uniform_feasible(512, 8, 0.2, 1.0, rng);
    State state = State::all_on(instance, 0);
    EngineConfig config;
    config.max_rounds = 50000;
    return Engine(config).run(protocol, state, rng).counters.probes;
  };
  UniformSampling uniform(0.5);
  CachedSampling cached(0.5, 0);
  // Few resources, many users: sharing is dramatic.
  EXPECT_LT(run_with(cached), run_with(uniform) / 4);
}

TEST(CachedSampling, LargeTtlStillConvergesEventually) {
  Xoshiro256 rng(5);
  const Instance instance = make_uniform_feasible(256, 16, 0.3, 1.0, rng);
  State state = State::all_on(instance, 0);
  CachedSampling protocol(0.5, /*ttl=*/16);
  EngineConfig config;
  config.max_rounds = 100000;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
}

TEST(CachedSampling, StalenessSlowsConvergence) {
  auto rounds_with_ttl = [](std::uint32_t ttl) {
    double total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Xoshiro256 rng(seed);
      const Instance instance = make_uniform_feasible(1024, 64, 0.15, 1.0, rng);
      State state = State::all_on(instance, 0);
      CachedSampling protocol(0.5, ttl);
      EngineConfig config;
      config.max_rounds = 100000;
      total += static_cast<double>(Engine(config).run(protocol, state, rng).rounds);
    }
    return total / 5.0;
  };
  EXPECT_LT(rounds_with_ttl(0), rounds_with_ttl(16));
}

TEST(CachedSampling, ResetClearsTheCache) {
  Xoshiro256 rng(7);
  const Instance instance = make_uniform_feasible(64, 4, 0.3, 1.0, rng);
  CachedSampling protocol(0.5, 4);

  auto first_round_probes = [&] {
    State state = State::all_on(instance, 0);
    Xoshiro256 step_rng(11);
    Counters counters;
    protocol.reset();
    protocol.step(state, step_rng, counters);
    return counters.probes;
  };
  EXPECT_EQ(first_round_probes(), first_round_probes());
}

TEST(CachedSampling, NameAndParameters) {
  CachedSampling protocol(0.25, 3);
  EXPECT_EQ(protocol.name(), "cached(lambda=0.25,ttl=3)");
  EXPECT_EQ(protocol.ttl(), 3u);
  EXPECT_THROW(CachedSampling(0.0, 1), std::invalid_argument);
}

TEST(TwoChoices, BalancesBetterThanRandom) {
  Xoshiro256 rng(13);
  const Instance instance = make_uniform_feasible(4096, 256, 0.5, 1.0, rng);
  Xoshiro256 a(1), b(1);
  const State random_state = State::random(instance, a);
  const State two_choice_state = State::two_choices(instance, b);
  EXPECT_LT(two_choice_state.max_load(), random_state.max_load());
  two_choice_state.check_invariants();
}

TEST(TwoChoices, DeterministicPerSeed) {
  Xoshiro256 rng(17);
  const Instance instance = make_uniform_feasible(128, 8, 0.3, 1.0, rng);
  Xoshiro256 a(5), b(5);
  const State sa = State::two_choices(instance, a);
  const State sb = State::two_choices(instance, b);
  for (UserId u = 0; u < instance.num_users(); ++u)
    EXPECT_EQ(sa.resource_of(u), sb.resource_of(u));
}

}  // namespace
}  // namespace qoslb
