// sim/worker_pool.hpp — the persistent round worker pool behind
// ParallelRoundEngine's decide fan-out.

#include "sim/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qoslb {
namespace {

TEST(RoundWorkerPool, RunsEveryIndexExactlyOnce) {
  RoundWorkerPool pool(4);
  EXPECT_EQ(pool.participants(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(RoundWorkerPool, ReusableAcrossManyRounds) {
  RoundWorkerPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 200; ++round)
    pool.run(64, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 200u * (63u * 64u / 2));
}

TEST(RoundWorkerPool, HandlesEmptyAndTinyBatches) {
  RoundWorkerPool pool(8);
  std::atomic<int> calls{0};
  pool.run(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.run(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(RoundWorkerPool, SingleParticipantRunsInline) {
  RoundWorkerPool pool(1);
  EXPECT_EQ(pool.participants(), 1u);
  std::vector<int> order;
  // With one participant there are no workers; the caller executes every
  // index itself, in ascending claim order.
  pool.run(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RoundWorkerPool, DefaultsToHardwareConcurrency) {
  RoundWorkerPool pool;
  EXPECT_GE(pool.participants(), 1u);
}

TEST(RoundWorkerPool, PropagatesTheFirstBodyException) {
  RoundWorkerPool pool(4);
  EXPECT_THROW(
      pool.run(100,
               [&](std::size_t i) {
                 if (i == 17) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool survives the failed batch and runs clean batches afterwards.
  std::atomic<int> calls{0};
  pool.run(32, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 32);
}

}  // namespace
}  // namespace qoslb
