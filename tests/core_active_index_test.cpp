// Property tests for the incremental satisfaction index (PR 3 tentpole):
// after long random move sequences the incrementally maintained unsatisfied
// set and satisfied counter must equal a from-scratch recompute — on the
// unit model (core/state) and the weighted model (core/weighted), where one
// move can flip a whole window of users on both endpoint resources.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/generators.hpp"
#include "core/state.hpp"
#include "core/weighted/weighted_generators.hpp"
#include "core/weighted/weighted_state.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

constexpr std::size_t kMoves = 10000;
// A full unsatisfied-set comparison is O(n log n); doing it on a stride (plus
// once at the end) keeps the test fast while the O(1) counter is checked
// after every single move.
constexpr std::size_t kSetCheckStride = 250;

template <typename StateT>
std::vector<UserId> brute_force_unsatisfied(const StateT& state) {
  std::vector<UserId> unsat;
  for (UserId u = 0; u < state.num_users(); ++u)
    if (!state.satisfied(u)) unsat.push_back(u);
  return unsat;
}

template <typename StateT>
std::size_t brute_force_satisfied(const StateT& state) {
  std::size_t count = 0;
  for (UserId u = 0; u < state.num_users(); ++u)
    if (state.satisfied(u)) ++count;
  return count;
}

template <typename StateT>
void expect_index_matches_recompute(const StateT& state) {
  std::vector<UserId> tracked(state.unsatisfied_view().begin(),
                              state.unsatisfied_view().end());
  std::sort(tracked.begin(), tracked.end());
  EXPECT_EQ(tracked, brute_force_unsatisfied(state));
  state.check_invariants();
}

template <typename StateT>
void random_walk(StateT& state, Xoshiro256& rng) {
  const std::size_t n = state.num_users();
  const std::size_t m = state.num_resources();
  state.enable_satisfaction_tracking();
  expect_index_matches_recompute(state);
  for (std::size_t i = 0; i < kMoves; ++i) {
    const auto u = static_cast<UserId>(uniform_u64_below(rng, n));
    // Includes self-moves (r == current resource), which must be no-ops.
    const auto r = static_cast<ResourceId>(uniform_u64_below(rng, m));
    state.move(u, r);
    ASSERT_EQ(state.count_satisfied(), brute_force_satisfied(state))
        << "after move " << i << " of user " << u << " to " << r;
    if ((i + 1) % kSetCheckStride == 0) expect_index_matches_recompute(state);
  }
  expect_index_matches_recompute(state);
}

TEST(SatisfactionIndexProperty, UnitModelMatchesRecomputeOverRandomMoves) {
  for (const std::uint64_t seed : {1u, 7u, 99u}) {
    Xoshiro256 rng(seed);
    const Instance instance = make_uniform_feasible(512, 32, 0.3, 1.5, rng);
    State state = State::random(instance, rng);
    random_walk(state, rng);
  }
}

TEST(SatisfactionIndexProperty, UnitModelFromCongestedStart) {
  // all_on(0) makes resource 0 massively over threshold: the first moves
  // flip long runs of users at once, stressing the bucket-range updates.
  Xoshiro256 rng(5);
  const Instance instance = make_uniform_feasible(512, 16, 0.2, 1.5, rng);
  State state = State::all_on(instance, 0);
  random_walk(state, rng);
}

TEST(SatisfactionIndexProperty, WeightedModelMatchesRecomputeOverRandomMoves) {
  for (const std::uint64_t seed : {2u, 13u}) {
    Xoshiro256 rng(seed);
    const WeightedInstance instance =
        make_weighted_feasible(384, 16, 0.3, /*weight_classes=*/4,
                               /*skew=*/0.8, rng);
    WeightedState state = WeightedState::random(instance, rng);
    random_walk(state, rng);
  }
}

TEST(SatisfactionIndexProperty, WeightedModelFromCongestedStart) {
  Xoshiro256 rng(11);
  const WeightedInstance instance =
      make_weighted_feasible(384, 12, 0.25, /*weight_classes=*/5,
                             /*skew=*/0.5, rng);
  WeightedState state = WeightedState::all_on(instance, 0);
  random_walk(state, rng);
}

TEST(SatisfactionIndexProperty, TrackingEnabledMidSequenceAgrees) {
  // Enabling the index after untracked moves must rebuild to the same set a
  // tracked-from-the-start walk reaches: the index is a pure function of the
  // current assignment.
  Xoshiro256 rng(21);
  const Instance instance = make_uniform_feasible(256, 16, 0.3, 1.5, rng);
  State tracked = State::round_robin(instance);
  State late = State::round_robin(instance);
  tracked.enable_satisfaction_tracking();
  for (std::size_t i = 0; i < 2000; ++i) {
    const auto u = static_cast<UserId>(uniform_u64_below(rng, 256));
    const auto r = static_cast<ResourceId>(uniform_u64_below(rng, 16));
    tracked.move(u, r);
    late.move(u, r);
  }
  late.enable_satisfaction_tracking();
  std::vector<UserId> a(tracked.unsatisfied_view().begin(),
                        tracked.unsatisfied_view().end());
  std::vector<UserId> b(late.unsatisfied_view().begin(),
                        late.unsatisfied_view().end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(tracked.count_satisfied(), late.count_satisfied());
}

}  // namespace
}  // namespace qoslb
