// obs::TraceSink implementations — the JSONL/CSV schema goldens, the memory
// and tee sinks, the progress sink's thinned logging, and the
// engine-produced JSONL stream for an immediately-stable run (begin,
// round-0 snapshot, end).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/potential.hpp"
#include "qoslb.hpp"
#include "util/log.hpp"

namespace qoslb::obs {
namespace {

TraceRunInfo sample_info() {
  TraceRunInfo info;
  info.protocol = "uniform(lambda=0.5)";
  info.users = 100;
  info.resources = 10;
  info.seed = 42;
  info.threads = 4;
  info.mode = "dense";
  return info;
}

TraceRow sample_row() {
  TraceRow row;
  row.round = 3;
  row.unsatisfied = 17;
  row.migrations = 120;
  row.messages = 480;
  row.max_load = 15;
  row.potential = 2.5;
  row.active_size = 21;
  return row;
}

TEST(MemoryTraceSink, BuffersRunsAndRows) {
  MemoryTraceSink sink;
  sink.begin_run(sample_info());
  sink.row(sample_row());
  sink.row(sample_row());
  sink.end_run();
  ASSERT_EQ(sink.runs().size(), 1u);
  EXPECT_EQ(sink.runs()[0].protocol, "uniform(lambda=0.5)");
  ASSERT_EQ(sink.rows().size(), 2u);
  EXPECT_EQ(sink.rows()[1].unsatisfied, 17u);
  sink.clear();
  EXPECT_TRUE(sink.runs().empty());
  EXPECT_TRUE(sink.rows().empty());
}

TEST(JsonlTraceSink, SchemaGolden) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.begin_run(sample_info());
  sink.row(sample_row());
  sink.end_run();
  EXPECT_EQ(out.str(),
            "{\"event\":\"begin\",\"protocol\":\"uniform(lambda=0.5)\","
            "\"users\":100,\"resources\":10,\"seed\":42,\"threads\":4,"
            "\"mode\":\"dense\"}\n"
            "{\"round\":3,\"unsatisfied\":17,\"migrations\":120,"
            "\"messages\":480,\"max_load\":15,\"potential\":2.5,"
            "\"active_size\":21}\n"
            "{\"event\":\"end\"}\n");
}

TEST(JsonlTraceSink, EscapesQuotesAndBackslashes) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  TraceRunInfo info = sample_info();
  info.protocol = "we\"ird\\name";
  sink.begin_run(info);
  EXPECT_NE(out.str().find("\"protocol\":\"we\\\"ird\\\\name\""),
            std::string::npos);
}

TEST(CsvTraceSink, HeaderOncePerSinkThenRows) {
  std::ostringstream out;
  CsvTraceSink sink(out);
  sink.begin_run(sample_info());
  sink.row(sample_row());
  sink.end_run();
  sink.begin_run(sample_info());  // second run: no second header
  sink.row(sample_row());
  sink.end_run();
  EXPECT_EQ(out.str(),
            "round,unsatisfied,migrations,messages,max_load,potential,"
            "active_size\n"
            "3,17,120,480,15,2.5,21\n"
            "3,17,120,480,15,2.5,21\n");
}

TEST(TeeTraceSink, FansOutInOrderAndSkipsNulls) {
  MemoryTraceSink first;
  MemoryTraceSink second;
  TeeTraceSink tee;
  tee.add(&first);
  tee.add(nullptr);
  tee.add(&second);
  tee.begin_run(sample_info());
  tee.row(sample_row());
  tee.end_run();
  EXPECT_EQ(first.rows().size(), 1u);
  EXPECT_EQ(second.rows().size(), 1u);
  EXPECT_EQ(first.runs().size(), 1u);
}

class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(Log::level()) {
    Log::set_level(level);
  }
  ~ScopedLogLevel() { Log::set_level(previous_); }

 private:
  LogLevel previous_;
};

TEST(ProgressTraceSink, LogsEveryNthRoundAndTheFinalRow) {
  ScopedLogLevel raise(LogLevel::kInfo);
  ProgressTraceSink sink(/*every=*/2);
  ::testing::internal::CaptureStderr();
  sink.begin_run(sample_info());  // 1 header line
  for (std::uint64_t r = 0; r <= 5; ++r) {
    TraceRow row = sample_row();
    row.round = r;
    sink.row(row);  // rounds 0, 2, 4 logged as they pass
  }
  sink.end_run();  // round 5 was unlogged: flushed here
  const std::string log = ::testing::internal::GetCapturedStderr();
  std::size_t lines = 0;
  for (const char c : log) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 5u) << log;
  EXPECT_NE(log.find("round 4"), std::string::npos);
  EXPECT_NE(log.find("round 5"), std::string::npos);
  EXPECT_EQ(log.find("round 3"), std::string::npos);
}

TEST(ProgressTraceSink, SilentBelowInfoLevel) {
  ScopedLogLevel quiet(LogLevel::kWarn);
  ProgressTraceSink sink;
  ::testing::internal::CaptureStderr();
  sink.begin_run(sample_info());
  sink.row(sample_row());
  sink.end_run();
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

// The engine side of the schema: an already-stable state converges at round
// 0, so the stream is exactly begin + the round-0 snapshot + end, with the
// snapshot row describing the initial state.
TEST(EngineJsonl, ImmediatelyStableRunEmitsSnapshotOnly) {
  const Instance instance = Instance::identical(2, 1.0, {0.5, 0.5});
  State state = State::all_on(instance, 0);  // load 2 == threshold: stable

  std::ostringstream out;
  JsonlTraceSink sink(out);
  EngineConfig config;
  config.telemetry.sink = &sink;
  config.seed = 9;
  Xoshiro256 rng(123);
  Xoshiro256 probe(123);  // replicates the engine's one caller-RNG draw
  const std::uint64_t run_seed = derive_seed(config.seed, probe());

  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.telemetry.trace_rows, 1u);

  std::ostringstream potential;
  potential.precision(12);
  potential << rosenthal_potential(state);
  const std::string expected =
      "{\"event\":\"begin\",\"protocol\":\"uniform(lambda=0.5)\",\"users\":2,"
      "\"resources\":2,\"seed\":" +
      std::to_string(run_seed) +
      ",\"threads\":1,\"mode\":\"dense\"}\n"
      "{\"round\":0,\"unsatisfied\":0,\"migrations\":0,\"messages\":0,"
      "\"max_load\":2,\"potential\":" +
      potential.str() +
      ",\"active_size\":0}\n"
      "{\"event\":\"end\"}\n";
  EXPECT_EQ(out.str(), expected);
}

}  // namespace
}  // namespace qoslb::obs
