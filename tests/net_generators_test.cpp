#include "net/generators.hpp"

#include <gtest/gtest.h>

#include "net/properties.hpp"

namespace qoslb {
namespace {

class RingSize : public ::testing::TestWithParam<Vertex> {};

TEST_P(RingSize, DegreeTwoConnectedKnownDiameter) {
  const Vertex n = GetParam();
  const Graph g = make_ring(n);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(diameter(g), n / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSize, ::testing::Values(3, 4, 7, 10, 33));

TEST(Complete, AllPairsAdjacent) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(diameter(g), 1u);
  for (Vertex a = 0; a < 6; ++a)
    for (Vertex b = 0; b < 6; ++b)
      if (a != b) {
        EXPECT_TRUE(g.has_edge(a, b));
      }
}

TEST(Complete, SingleVertex) {
  const Graph g = make_complete(1);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Path, EndpointsDegreeOne) {
  const Graph g = make_path(6);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(5), 1u);
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_EQ(diameter(g), 5u);
}

TEST(Star, HubConnectsEverything) {
  const Graph g = make_star(8);
  EXPECT_EQ(g.degree(0), 7u);
  for (Vertex v = 1; v < 8; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Torus, DegreeFourAndVertexCount) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(is_connected(g));
  // Torus diameter = floor(rows/2) + floor(cols/2).
  EXPECT_EQ(diameter(g), 2u + 2u);
}

TEST(Torus, RejectsThinDimensions) {
  EXPECT_THROW(make_torus(2, 5), std::invalid_argument);
}

class HypercubeDim : public ::testing::TestWithParam<unsigned> {};

TEST_P(HypercubeDim, DegreeAndDiameterEqualDim) {
  const unsigned dim = GetParam();
  const Graph g = make_hypercube(dim);
  EXPECT_EQ(g.num_vertices(), Vertex{1} << dim);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(g.degree(v), static_cast<std::size_t>(dim));
  EXPECT_EQ(diameter(g), dim);
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeDim, ::testing::Values(1u, 2u, 3u, 5u, 7u));

TEST(RandomRegular, DegreesExact) {
  Xoshiro256 rng(11);
  const Graph g = make_random_regular(24, 3, rng);
  for (Vertex v = 0; v < 24; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(RandomRegular, RejectsOddProduct) {
  Xoshiro256 rng(1);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);
}

TEST(RandomRegular, TypicallyConnectedAtDegreeFour) {
  Xoshiro256 rng(13);
  int connected = 0;
  for (int trial = 0; trial < 10; ++trial)
    if (is_connected(make_random_regular(32, 4, rng))) ++connected;
  EXPECT_GE(connected, 9);  // random 4-regular graphs are a.a.s. connected
}

TEST(Gnp, ExtremeProbabilities) {
  Xoshiro256 rng(17);
  const Graph empty = make_gnp(10, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0u);
  const Graph full = make_gnp(10, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 45u);
}

TEST(Gnp, EdgeCountNearExpectation) {
  Xoshiro256 rng(19);
  const Graph g = make_gnp(60, 0.3, rng);
  const double expected = 0.3 * 60 * 59 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 120);
}

TEST(Properties, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Properties, DisconnectedComponents) {
  const Edge edges[] = {{0, 1}, {2, 3}};
  const Graph g = Graph::from_edges(5, edges);
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(component_count(g), 3u);
  EXPECT_THROW(diameter(g), std::invalid_argument);
}

TEST(Properties, ComponentCountOfConnected) {
  EXPECT_EQ(component_count(make_ring(9)), 1u);
}


TEST(SmallWorld, BetaZeroIsTheLattice) {
  Xoshiro256 rng(1);
  const Graph g = make_small_world(20, 2, 0.0, rng);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(SmallWorld, RewiringShrinksDiameter) {
  Xoshiro256 rng(3);
  const Graph lattice = make_small_world(64, 2, 0.0, rng);
  const Graph rewired = make_small_world(64, 2, 0.3, rng);
  ASSERT_TRUE(is_connected(lattice));
  if (is_connected(rewired)) {
    EXPECT_LE(diameter(rewired), diameter(lattice));
  }
}

TEST(SmallWorld, EdgeCountPreserved) {
  Xoshiro256 rng(5);
  const Graph g = make_small_world(40, 3, 0.5, rng);
  EXPECT_EQ(g.num_edges(), 120u);  // n*k edges, rewired not deleted
}

TEST(SmallWorld, RejectsBadParameters) {
  Xoshiro256 rng(1);
  EXPECT_THROW(make_small_world(3, 1, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_small_world(10, 5, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_small_world(10, 2, 1.5, rng), std::invalid_argument);
}

TEST(Barbell, StructureAndDiameter) {
  const Graph g = make_barbell(5, 3);
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_TRUE(is_connected(g));
  // Clique interiors have degree clique-1; the connectors one more.
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(4), 5u);   // left connector
  EXPECT_EQ(g.degree(5), 2u);   // bridge vertex
  // Diameter: clique hop + bridge+1 + clique hop = 1 + 4 + 1.
  EXPECT_EQ(diameter(g), 6u);
}

TEST(Barbell, ZeroBridgeJoinsCliquesDirectly) {
  const Graph g = make_barbell(4, 0);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_TRUE(g.has_edge(3, 4));
  EXPECT_EQ(diameter(g), 3u);
}

}  // namespace
}  // namespace qoslb
