#include <gtest/gtest.h>

#include <vector>

#include "core/accounting.hpp"
#include "sim/des.hpp"
#include "sim/round_engine.hpp"

namespace qoslb {
namespace {

// ---- round engine ----

class CountdownTask : public RoundTask {
 public:
  explicit CountdownTask(int start) : remaining_(start) {}
  void round(std::uint64_t) override { --remaining_; }
  bool converged() const override { return remaining_ <= 0; }
  int remaining() const { return remaining_; }

 private:
  int remaining_;
};

TEST(RoundEngine, RunsUntilConverged) {
  CountdownTask task(5);
  const RoundRunResult result = run_rounds(task, 100);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 5u);
  EXPECT_EQ(task.remaining(), 0);
}

TEST(RoundEngine, RespectsMaxRounds) {
  CountdownTask task(10);
  const RoundRunResult result = run_rounds(task, 3);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 3u);
}

TEST(RoundEngine, AlreadyConvergedRunsZeroRounds) {
  CountdownTask task(0);
  const RoundRunResult result = run_rounds(task, 100);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(RoundEngine, ObserverSeesEveryRound) {
  CountdownTask task(4);
  std::vector<std::uint64_t> seen;
  run_rounds(task, 100, [&seen](std::uint64_t r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

// ---- counters ----

TEST(Counters, MessageCostModel) {
  Counters c;
  c.probes = 3;            // 3 round trips = 6 messages
  c.migrate_requests = 2;  // 2
  c.grants = 1;            // 1
  c.rejects = 1;           // 1
  c.migrations = 1;        // 1
  EXPECT_EQ(c.messages(), 11u);
}

TEST(Counters, Accumulate) {
  Counters a, b;
  a.probes = 1;
  a.rounds = 2;
  b.probes = 3;
  b.migrations = 4;
  a += b;
  EXPECT_EQ(a.probes, 4u);
  EXPECT_EQ(a.rounds, 2u);
  EXPECT_EQ(a.migrations, 4u);
}

// ---- discrete-event engine ----

/// Records every delivery (time, src) it sees.
class RecorderAgent : public DesAgent {
 public:
  void on_message(const Message& msg, DesEngine& engine) override {
    deliveries.emplace_back(engine.now(), msg.src);
  }
  std::vector<std::pair<double, AgentId>> deliveries;
};

/// Replies to every probe with a kLoadReply.
class EchoAgent : public DesAgent {
 public:
  void on_message(const Message& msg, DesEngine& engine) override {
    ++received;
    if (msg.type == MsgType::kProbe) {
      Message reply;
      reply.type = MsgType::kLoadReply;
      reply.src = msg.dst;
      reply.dst = msg.src;
      engine.send(reply, 1.0);
    }
  }
  int received = 0;
};

TEST(DesEngine, DeliversInTimeOrder) {
  DesEngine engine(1);
  RecorderAgent recorder;
  const AgentId id = engine.add_agent(&recorder);
  Message m;
  m.dst = id;
  m.src = 7;
  engine.send(m, 5.0);
  m.src = 8;
  engine.send(m, 2.0);
  m.src = 9;
  engine.send(m, 9.0);
  engine.run();
  ASSERT_EQ(recorder.deliveries.size(), 3u);
  EXPECT_EQ(recorder.deliveries[0].second, 8u);
  EXPECT_EQ(recorder.deliveries[1].second, 7u);
  EXPECT_EQ(recorder.deliveries[2].second, 9u);
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(DesEngine, FifoTieBreakOnEqualTimes) {
  DesEngine engine(1);
  RecorderAgent recorder;
  const AgentId id = engine.add_agent(&recorder);
  for (AgentId s = 0; s < 5; ++s) {
    Message m;
    m.dst = id;
    m.src = s;
    engine.send(m, 1.0);
  }
  engine.run();
  for (AgentId s = 0; s < 5; ++s) EXPECT_EQ(recorder.deliveries[s].second, s);
}

TEST(DesEngine, PingPongTerminatesAndCounts) {
  DesEngine engine(1);
  EchoAgent a, b;
  const AgentId ida = engine.add_agent(&a);
  const AgentId idb = engine.add_agent(&b);
  Message probe;
  probe.type = MsgType::kProbe;
  probe.src = ida;
  probe.dst = idb;
  engine.send(probe, 1.0);
  const std::uint64_t events = engine.run();
  EXPECT_EQ(events, 2u);  // probe + reply; replies do not re-trigger
  EXPECT_EQ(b.received, 1);
  EXPECT_EQ(a.received, 1);
}

TEST(DesEngine, MaxEventsCap) {
  DesEngine engine(1);
  // Self-perpetuating timer chain.
  class TimerAgent : public DesAgent {
   public:
    void on_start(DesEngine& engine) override { engine.schedule_timer(0, 1.0); }
    void on_message(const Message&, DesEngine& engine) override {
      engine.schedule_timer(0, 1.0);
    }
  } agent;
  engine.add_agent(&agent);
  const std::uint64_t events = engine.run(10);
  EXPECT_EQ(events, 10u);
  EXPECT_GT(engine.pending(), 0u);
}

TEST(DesEngine, JitterIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    DesEngine engine(seed, 0.7);
    RecorderAgent recorder;
    const AgentId id = engine.add_agent(&recorder);
    for (int i = 0; i < 8; ++i) {
      Message m;
      m.dst = id;
      m.src = static_cast<AgentId>(i);
      engine.send(m, 1.0);
    }
    engine.run();
    return recorder.deliveries;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(DesEngine, RejectsBadSends) {
  DesEngine engine(1);
  RecorderAgent recorder;
  engine.add_agent(&recorder);
  Message m;
  m.dst = 42;  // unknown agent
  EXPECT_THROW(engine.send(m), std::invalid_argument);
  m.dst = 0;
  EXPECT_THROW(engine.send(m, -1.0), std::invalid_argument);
}

TEST(DesEngine, TimerCarriesPayload) {
  DesEngine engine(1);
  class PayloadAgent : public DesAgent {
   public:
    void on_message(const Message& msg, DesEngine&) override { last = msg.a; }
    std::int64_t last = -1;
  } agent;
  const AgentId id = engine.add_agent(&agent);
  engine.schedule_timer(id, 1.0, 77);
  engine.run();
  EXPECT_EQ(agent.last, 77);
}

}  // namespace
}  // namespace qoslb
