#include "core/async/async_protocols.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(AsyncAdmission, FeasibleInstanceQuiescesFullySatisfied) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(80, 8, 0.5, 1.0, rng);
  AsyncConfig config;
  config.seed = 7;
  const AsyncRunResult result = run_async_admission(inst, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.satisfied, 80u);
  EXPECT_LT(result.events, config.max_events);  // queue drained
}

TEST(AsyncAdmission, DeterministicPerSeed) {
  Xoshiro256 rng(2);
  const Instance inst = make_uniform_feasible(40, 4, 0.5, 1.0, rng);
  AsyncConfig config;
  config.seed = 5;
  const AsyncRunResult a = run_async_admission(inst, config);
  const AsyncRunResult b = run_async_admission(inst, config);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.counters.migrations, b.counters.migrations);
}

TEST(AsyncAdmission, DifferentSeedsDifferentSchedules) {
  Xoshiro256 rng(3);
  const Instance inst = make_uniform_feasible(60, 6, 0.4, 1.5, rng);
  AsyncConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  // Force real migration work so the schedules actually diverge.
  a_cfg.random_start = false;
  b_cfg.random_start = false;
  const AsyncRunResult a = run_async_admission(inst, a_cfg);
  const AsyncRunResult b = run_async_admission(inst, b_cfg);
  EXPECT_TRUE(a.all_satisfied);
  EXPECT_TRUE(b.all_satisfied);
  EXPECT_NE(a.virtual_time, b.virtual_time);  // jitter-dependent schedule
}

TEST(AsyncAdmission, InfeasibleInstanceIsCutOffAtMaxEvents) {
  const Instance inst = make_overloaded(30, 3, 2.0);
  AsyncConfig config;
  config.max_events = 20000;
  const AsyncRunResult result = run_async_admission(inst, config);
  EXPECT_FALSE(result.all_satisfied);
  EXPECT_EQ(result.events, config.max_events);
  // The stable population matches capacity: threshold 5 per resource.
  EXPECT_LE(result.satisfied, 15u);
}

TEST(AsyncAdmission, DeterministicStartPlacement) {
  Xoshiro256 rng(4);
  const Instance inst = make_uniform_feasible(20, 4, 0.6, 1.0, rng);
  AsyncConfig config;
  config.random_start = false;  // everyone starts on resource 0
  const AsyncRunResult result = run_async_admission(inst, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_GT(result.counters.migrations, 0u);
}

TEST(AsyncAdmission, GrantRejectAccounting) {
  Xoshiro256 rng(5);
  const Instance inst = make_uniform_feasible(50, 5, 0.3, 1.0, rng);
  const AsyncRunResult result = run_async_admission(inst);
  EXPECT_EQ(result.counters.grants + result.counters.rejects,
            result.counters.migrate_requests);
  EXPECT_EQ(result.counters.grants, result.counters.migrations);
}

TEST(AsyncAdmission, SingleUserTrivial) {
  const Instance inst = Instance::identical(3, 1.0, {0.5});
  const AsyncRunResult result = run_async_admission(inst);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.counters.migrations, 0u);
}


TEST(AsyncOptimistic, DampedRunSettlesOnFeasibleInstance) {
  Xoshiro256 rng(6);
  const Instance inst = make_uniform_feasible(80, 8, 0.4, 1.0, rng);
  AsyncConfig config;
  config.seed = 9;
  config.random_start = false;
  const AsyncRunResult result = run_async_optimistic(inst, 0.5, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_LT(result.events, config.max_events);
  // No handshake: every request is granted.
  EXPECT_EQ(result.counters.rejects, 0u);
  EXPECT_EQ(result.counters.grants, result.counters.migrate_requests);
}

TEST(AsyncOptimistic, CanOvershootWhereAdmissionCannot) {
  // Tight instance, concentrated start: the optimistic join path displaces
  // residents (observable as more migrations than the population needs),
  // while gated admission never displaces anyone.
  Xoshiro256 rng(7);
  const Instance inst = make_uniform_feasible(200, 10, 0.05, 1.0, rng);
  AsyncConfig config;
  config.seed = 11;
  config.random_start = false;
  config.max_events = 400000;
  const AsyncRunResult optimistic = run_async_optimistic(inst, 1.0, config);
  const AsyncRunResult gated = run_async_admission(inst, config);
  EXPECT_GT(optimistic.counters.migrations, gated.counters.migrations);
  EXPECT_TRUE(gated.all_satisfied);
}

TEST(AsyncOptimistic, DeterministicPerSeed) {
  Xoshiro256 rng(8);
  const Instance inst = make_uniform_feasible(40, 4, 0.4, 1.0, rng);
  AsyncConfig config;
  config.seed = 13;
  const AsyncRunResult a = run_async_optimistic(inst, 0.7, config);
  const AsyncRunResult b = run_async_optimistic(inst, 0.7, config);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.counters.migrations, b.counters.migrations);
}

TEST(AsyncOptimistic, RejectsBadLambda) {
  const Instance inst = Instance::identical(2, 1.0, {0.5});
  EXPECT_THROW(run_async_optimistic(inst, 0.0), std::invalid_argument);
  EXPECT_THROW(run_async_optimistic(inst, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
