#include "core/async/async_protocols.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(AsyncAdmission, FeasibleInstanceQuiescesFullySatisfied) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(80, 8, 0.5, 1.0, rng);
  EngineConfig config;
  config.seed = 7;
  const AsyncRunResult result = run_async_admission(inst, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.satisfied, 80u);
  EXPECT_LT(result.events, config.max_events);  // queue drained
  EXPECT_EQ(result.termination, Termination::kQuiesced);
  EXPECT_FALSE(result.hit_event_cap);
  EXPECT_EQ(result.faults.total(), 0u);  // injector never attached
}

TEST(AsyncAdmission, DeterministicPerSeed) {
  Xoshiro256 rng(2);
  const Instance inst = make_uniform_feasible(40, 4, 0.5, 1.0, rng);
  EngineConfig config;
  config.seed = 5;
  const AsyncRunResult a = run_async_admission(inst, config);
  const AsyncRunResult b = run_async_admission(inst, config);
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.counters.migrations, b.counters.migrations);
}

TEST(AsyncAdmission, DifferentSeedsDifferentSchedules) {
  Xoshiro256 rng(3);
  const Instance inst = make_uniform_feasible(60, 6, 0.4, 1.5, rng);
  EngineConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  // Force real migration work so the schedules actually diverge.
  a_cfg.random_start = false;
  b_cfg.random_start = false;
  const AsyncRunResult a = run_async_admission(inst, a_cfg);
  const AsyncRunResult b = run_async_admission(inst, b_cfg);
  EXPECT_TRUE(a.all_satisfied);
  EXPECT_TRUE(b.all_satisfied);
  EXPECT_NE(a.virtual_time, b.virtual_time);  // jitter-dependent schedule
}

TEST(AsyncAdmission, InfeasibleInstanceIsCutOffAtMaxEvents) {
  const Instance inst = make_overloaded(30, 3, 2.0);
  EngineConfig config;
  config.max_events = 20000;
  const AsyncRunResult result = run_async_admission(inst, config);
  EXPECT_FALSE(result.all_satisfied);
  EXPECT_EQ(result.events, config.max_events);
  // Termination reason distinguishes the cutoff from real quiescence.
  EXPECT_EQ(result.termination, Termination::kEventCap);
  EXPECT_TRUE(result.hit_event_cap);
  // The stable population matches capacity: threshold 5 per resource.
  EXPECT_LE(result.satisfied, 15u);
}

TEST(AsyncAdmission, DeterministicStartPlacement) {
  Xoshiro256 rng(4);
  const Instance inst = make_uniform_feasible(20, 4, 0.6, 1.0, rng);
  EngineConfig config;
  config.random_start = false;  // everyone starts on resource 0
  const AsyncRunResult result = run_async_admission(inst, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_GT(result.counters.migrations, 0u);
}

TEST(AsyncAdmission, GrantRejectAccounting) {
  Xoshiro256 rng(5);
  const Instance inst = make_uniform_feasible(50, 5, 0.3, 1.0, rng);
  const AsyncRunResult result = run_async_admission(inst);
  EXPECT_EQ(result.counters.grants + result.counters.rejects,
            result.counters.migrate_requests);
  EXPECT_EQ(result.counters.grants, result.counters.migrations);
}

TEST(AsyncAdmission, SingleUserTrivial) {
  const Instance inst = Instance::identical(3, 1.0, {0.5});
  const AsyncRunResult result = run_async_admission(inst);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.counters.migrations, 0u);
}


TEST(AsyncOptimistic, DampedRunSettlesOnFeasibleInstance) {
  Xoshiro256 rng(6);
  const Instance inst = make_uniform_feasible(80, 8, 0.4, 1.0, rng);
  EngineConfig config;
  config.seed = 9;
  config.random_start = false;
  const AsyncRunResult result = run_async_optimistic(inst, 0.5, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_LT(result.events, config.max_events);
  EXPECT_EQ(result.termination, Termination::kQuiesced);
  // No handshake: every request is granted.
  EXPECT_EQ(result.counters.rejects, 0u);
  EXPECT_EQ(result.counters.grants, result.counters.migrate_requests);
}

TEST(AsyncOptimistic, CanOvershootWhereAdmissionCannot) {
  // Tight instance, concentrated start: the optimistic join path displaces
  // residents (observable as more migrations than the population needs),
  // while gated admission never displaces anyone.
  Xoshiro256 rng(7);
  const Instance inst = make_uniform_feasible(200, 10, 0.05, 1.0, rng);
  EngineConfig config;
  config.seed = 11;
  config.random_start = false;
  config.max_events = 400000;
  const AsyncRunResult optimistic = run_async_optimistic(inst, 1.0, config);
  const AsyncRunResult gated = run_async_admission(inst, config);
  EXPECT_GT(optimistic.counters.migrations, gated.counters.migrations);
  EXPECT_TRUE(gated.all_satisfied);
}

TEST(AsyncOptimistic, DeterministicPerSeed) {
  Xoshiro256 rng(8);
  const Instance inst = make_uniform_feasible(40, 4, 0.4, 1.0, rng);
  EngineConfig config;
  config.seed = 13;
  const AsyncRunResult a = run_async_optimistic(inst, 0.7, config);
  const AsyncRunResult b = run_async_optimistic(inst, 0.7, config);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.counters.migrations, b.counters.migrations);
}

TEST(AsyncOptimistic, RejectsBadLambda) {
  const Instance inst = Instance::identical(2, 1.0, {0.5});
  EXPECT_THROW(run_async_optimistic(inst, 0.0), std::invalid_argument);
  EXPECT_THROW(run_async_optimistic(inst, 1.5), std::invalid_argument);
}


// ---- explicit start placement ----

TEST(AsyncConfigStart, InitialAssignmentIsHonored) {
  Xoshiro256 rng(21);
  const Instance inst = make_uniform_feasible(24, 4, 0.6, 1.0, rng);
  EngineConfig config;
  // Everyone on resource 3: the run must drain users off it.
  config.initial_assignment.assign(24, ResourceId{3});
  const AsyncRunResult result = run_async_admission(inst, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_GT(result.counters.migrations, 0u);
}

TEST(AsyncConfigStart, RejectsBadInitialAssignment) {
  Xoshiro256 rng(22);
  const Instance inst = make_uniform_feasible(10, 2, 0.5, 1.0, rng);
  EngineConfig config;
  config.initial_assignment = {0, 1};  // wrong length
  EXPECT_THROW(run_async_admission(inst, config), std::invalid_argument);
  config.initial_assignment.assign(10, ResourceId{7});  // out of range
  EXPECT_THROW(run_async_admission(inst, config), std::invalid_argument);
}

// ---- fault tolerance ----

/// The scenario the fault layer exists for: uniform message loss, message
/// duplication, and a resource that crashes mid-run and recovers later. The
/// loss-tolerant protocol must still drive a feasible instance to full
/// satisfaction — the pre-fault implementation deadlocks into silent
/// quiescence on the first lost GRANT.
EngineConfig faulty_config(std::uint64_t seed) {
  EngineConfig config;
  config.seed = seed;
  config.random_start = false;  // concentrate load: forces real migrations
  config.faults.drop_all(0.10)
      .dup_all(0.05)
      .crash(/*agent=*/2, /*t_crash=*/5.0, /*t_recover=*/150.0);
  return config;
}

TEST(AsyncFaults, SurvivesLossDuplicationAndCrash) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(80, 8, 0.5, 1.0, rng);
  const AsyncRunResult result = run_async_admission(inst, faulty_config(7));
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.satisfied, 80u);
  EXPECT_EQ(result.termination, Termination::kQuiesced);
  // The injector actually did something.
  EXPECT_GT(result.faults.dropped, 0u);
  EXPECT_GT(result.faults.duplicated, 0u);
  // And the protocol noticed: silence was detected and answered.
  EXPECT_GT(result.counters.timeouts, 0u);
  EXPECT_GT(result.counters.retries, 0u);
  EXPECT_GT(result.counters.stale_drops, 0u);
}

TEST(AsyncFaults, DeterministicPerSeed) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(80, 8, 0.5, 1.0, rng);
  const AsyncRunResult a = run_async_admission(inst, faulty_config(7));
  const AsyncRunResult b = run_async_admission(inst, faulty_config(7));
  EXPECT_EQ(a.events, b.events);
  EXPECT_DOUBLE_EQ(a.virtual_time, b.virtual_time);
  EXPECT_EQ(a.counters.retries, b.counters.retries);
  EXPECT_EQ(a.counters.timeouts, b.counters.timeouts);
  EXPECT_EQ(a.faults.dropped, b.faults.dropped);
  EXPECT_EQ(a.faults.crash_dropped, b.faults.crash_dropped);
  const AsyncRunResult c = run_async_admission(inst, faulty_config(8));
  EXPECT_NE(a.events, c.events);  // different seed, different realization
}

TEST(AsyncFaults, SeveralSeedsAllConverge) {
  Xoshiro256 rng(1);
  const Instance inst = make_uniform_feasible(80, 8, 0.5, 1.0, rng);
  for (const std::uint64_t seed : {11ull, 13ull, 99ull, 123ull}) {
    const AsyncRunResult result = run_async_admission(inst, faulty_config(seed));
    EXPECT_TRUE(result.all_satisfied) << "seed=" << seed;
    EXPECT_EQ(result.termination, Termination::kQuiesced) << "seed=" << seed;
  }
}

TEST(AsyncFaults, OptimisticSurvivesLossToo) {
  Xoshiro256 rng(6);
  const Instance inst = make_uniform_feasible(80, 8, 0.4, 1.0, rng);
  EngineConfig config;
  config.seed = 9;
  config.random_start = false;
  config.faults.drop_all(0.08).dup_all(0.05);
  const AsyncRunResult result = run_async_optimistic(inst, 0.5, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.termination, Termination::kQuiesced);
}

TEST(AsyncFaults, ForceTimeoutsAloneIsBenign) {
  // The loss-tolerant machinery armed on a fault-free network must still
  // quiesce fully satisfied (timeouts never fire spuriously enough to
  // diverge; stale suppression never eats a live reply for good).
  Xoshiro256 rng(2);
  const Instance inst = make_uniform_feasible(60, 6, 0.5, 1.0, rng);
  EngineConfig config;
  config.seed = 17;
  config.random_start = false;
  config.force_timeouts = true;
  const AsyncRunResult result = run_async_admission(inst, config);
  EXPECT_TRUE(result.all_satisfied);
  EXPECT_EQ(result.termination, Termination::kQuiesced);
  EXPECT_EQ(result.faults.total(), 0u);  // no injector attached
}

/// Golden values recorded from the pre-fault-layer implementation (commit
/// be5e005): with an inert fault plan the retrofit must reproduce the legacy
/// schedules and counters byte for byte — same events, same virtual time,
/// same message counts. If this test breaks, the trusting-mode path changed
/// behavior, which the fault layer promised not to do.
TEST(AsyncFaults, FaultFreeRunMatchesLegacyGolden) {
  {
    Xoshiro256 rng(1);
    const Instance inst = make_uniform_feasible(80, 8, 0.5, 1.0, rng);
    EngineConfig config;
    config.seed = 7;
    const AsyncRunResult r = run_async_admission(inst, config);
    EXPECT_EQ(r.events, 160u);
    EXPECT_DOUBLE_EQ(r.virtual_time, 2.8786575718813698);
    EXPECT_EQ(r.counters.probes, 80u);
    EXPECT_EQ(r.counters.migrations, 0u);
    EXPECT_EQ(r.satisfied, 80u);
  }
  {
    Xoshiro256 rng(42);
    const Instance inst = make_uniform_feasible(120, 10, 0.4, 1.2, rng);
    EngineConfig config;
    config.seed = 21;
    config.random_start = false;
    const AsyncRunResult r = run_async_admission(inst, config);
    EXPECT_EQ(r.events, 865u);
    EXPECT_DOUBLE_EQ(r.virtual_time, 12.078577307892816);
    EXPECT_EQ(r.counters.probes, 242u);
    EXPECT_EQ(r.counters.migrate_requests, 120u);
    EXPECT_EQ(r.counters.grants, 118u);
    EXPECT_EQ(r.counters.rejects, 2u);
    EXPECT_EQ(r.counters.migrations, 118u);
    EXPECT_EQ(r.satisfied, 120u);
  }
  {
    Xoshiro256 rng(6);
    const Instance inst = make_uniform_feasible(80, 8, 0.4, 1.0, rng);
    EngineConfig config;
    config.seed = 9;
    config.random_start = false;
    const AsyncRunResult r = run_async_optimistic(inst, 0.5, config);
    EXPECT_EQ(r.events, 979u);
    EXPECT_DOUBLE_EQ(r.virtual_time, 24.069847277287586);
    EXPECT_EQ(r.counters.probes, 341u);
    EXPECT_EQ(r.counters.migrate_requests, 82u);
    EXPECT_EQ(r.counters.grants, 82u);
    EXPECT_EQ(r.counters.migrations, 82u);
    EXPECT_EQ(r.satisfied, 80u);
  }
}

}  // namespace
}  // namespace qoslb
