#include <gtest/gtest.h>

#include <stdexcept>

#include "core/instance.hpp"
#include "core/state.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(Instance, ThresholdIsFloorOfCapacityOverRequirement) {
  const Instance inst({10.0}, {3.0, 5.0, 10.0, 11.0});
  EXPECT_EQ(inst.threshold(0, 0), 3);  // 10/3
  EXPECT_EQ(inst.threshold(1, 0), 2);  // 10/5
  EXPECT_EQ(inst.threshold(2, 0), 1);  // 10/10
  EXPECT_EQ(inst.threshold(3, 0), 0);  // 10/11 < 1: never satisfiable
}

TEST(Instance, ReciprocalRequirementRoundTripsExactly) {
  // q = 1/T on unit capacity must give threshold exactly T, including values
  // where 1/T is not exactly representable.
  for (int t = 1; t <= 1000; ++t) {
    // n = t users so the clamp-to-n rule does not mask the floor result.
    const Instance inst(
        {1.0}, std::vector<double>(static_cast<std::size_t>(t),
                                   1.0 / static_cast<double>(t)));
    EXPECT_EQ(inst.threshold(0, 0), t) << "t=" << t;
  }
}

TEST(Instance, ThresholdClampedToUserCount) {
  const Instance inst({1000.0}, {1.0, 1.0, 1.0});
  EXPECT_EQ(inst.threshold(0, 0), 3);  // 1000 clamped to n=3
}

TEST(Instance, ThresholdScalesWithCapacity) {
  const Instance inst({1.0, 2.0, 4.0}, {0.5});
  EXPECT_EQ(inst.threshold(0, 0), 1);  // but clamped to n=1
  EXPECT_FALSE(inst.identical_capacities());
}

TEST(Instance, QualityIsCapacityOverLoad) {
  const Instance inst({6.0}, {1.0});
  EXPECT_DOUBLE_EQ(inst.quality(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(inst.quality(0, 6), 1.0);
  EXPECT_THROW(inst.quality(0, 0), std::invalid_argument);
}

TEST(Instance, IdenticalFactoryAndFlag) {
  const Instance inst = Instance::identical(4, 2.0, {1.0, 1.0});
  EXPECT_EQ(inst.num_resources(), 4u);
  EXPECT_TRUE(inst.identical_capacities());
  for (ResourceId r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(inst.capacity(r), 2.0);
}

TEST(Instance, RejectsBadInputs) {
  EXPECT_THROW(Instance({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Instance({1.0}, {}), std::invalid_argument);
  EXPECT_THROW(Instance({0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Instance({-1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Instance({1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(Instance({1.0}, {-2.0}), std::invalid_argument);
}

TEST(Instance, RejectsOutOfRangeQueries) {
  const Instance inst({1.0}, {1.0});
  EXPECT_THROW(inst.capacity(1), std::invalid_argument);
  EXPECT_THROW(inst.requirement(1), std::invalid_argument);
  EXPECT_THROW(inst.threshold(1, 0), std::invalid_argument);
  EXPECT_THROW(inst.threshold(0, 1), std::invalid_argument);
}

// ---- State ----

Instance three_by_two() { return Instance::identical(2, 1.0, {0.5, 0.5, 0.5}); }

TEST(State, ConstructionComputesLoads) {
  const Instance inst = three_by_two();
  const State state(inst, {0, 0, 1});
  EXPECT_EQ(state.load(0), 2);
  EXPECT_EQ(state.load(1), 1);
  EXPECT_EQ(state.resource_of(2), 1u);
  state.check_invariants();
}

TEST(State, AllOnPutsEveryoneTogether) {
  const Instance inst = three_by_two();
  const State state = State::all_on(inst, 1);
  EXPECT_EQ(state.load(1), 3);
  EXPECT_EQ(state.load(0), 0);
}

TEST(State, RoundRobinBalances) {
  const Instance inst = Instance::identical(3, 1.0, std::vector<double>(7, 0.5));
  const State state = State::round_robin(inst);
  EXPECT_EQ(state.load(0), 3);
  EXPECT_EQ(state.load(1), 2);
  EXPECT_EQ(state.load(2), 2);
}

TEST(State, RandomIsDeterministicPerSeed) {
  const Instance inst = Instance::identical(4, 1.0, std::vector<double>(20, 0.5));
  Xoshiro256 rng_a(3), rng_b(3);
  const State a = State::random(inst, rng_a);
  const State b = State::random(inst, rng_b);
  for (UserId u = 0; u < 20; ++u) EXPECT_EQ(a.resource_of(u), b.resource_of(u));
}

TEST(State, MoveUpdatesLoadsIncrementally) {
  const Instance inst = three_by_two();
  State state(inst, {0, 0, 1});
  state.move(0, 1);
  EXPECT_EQ(state.load(0), 1);
  EXPECT_EQ(state.load(1), 2);
  EXPECT_EQ(state.resource_of(0), 1u);
  state.check_invariants();
}

TEST(State, SelfMoveIsNoOp) {
  const Instance inst = three_by_two();
  State state(inst, {0, 0, 1});
  state.move(0, 0);
  EXPECT_EQ(state.load(0), 2);
  state.check_invariants();
}

TEST(State, SatisfactionFollowsThresholds) {
  // Thresholds: user0 -> 2, user1 -> 1.
  const Instance inst = Instance::identical(2, 1.0, {0.5, 1.0});
  State state(inst, {0, 0});  // load 2 on resource 0
  EXPECT_TRUE(state.satisfied(0));   // 2 <= 2
  EXPECT_FALSE(state.satisfied(1));  // 2 > 1
  EXPECT_EQ(state.count_satisfied(), 1u);
  EXPECT_EQ(state.count_unsatisfied(), 1u);

  state.move(1, 1);
  EXPECT_TRUE(state.satisfied(1));  // alone now
  EXPECT_EQ(state.count_satisfied(), 2u);
}

TEST(State, QualityOfUser) {
  const Instance inst = Instance::identical(2, 4.0, {1.0, 1.0});
  const State state(inst, {0, 0});
  EXPECT_DOUBLE_EQ(state.quality_of(0), 2.0);
}

TEST(State, MinMaxLoad) {
  const Instance inst = Instance::identical(3, 1.0, std::vector<double>(5, 0.5));
  const State state(inst, {0, 0, 0, 1, 1});
  EXPECT_EQ(state.max_load(), 3);
  EXPECT_EQ(state.min_load(), 0);
}

TEST(State, RejectsBadConstruction) {
  const Instance inst = three_by_two();
  EXPECT_THROW(State(inst, {0, 0}), std::invalid_argument);       // wrong size
  EXPECT_THROW(State(inst, {0, 0, 5}), std::invalid_argument);    // bad resource
  EXPECT_THROW(State::all_on(inst, 9), std::invalid_argument);
}

TEST(State, RejectsBadMoves) {
  const Instance inst = three_by_two();
  State state(inst, {0, 0, 1});
  EXPECT_THROW(state.move(9, 0), std::invalid_argument);
  EXPECT_THROW(state.move(0, 9), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
