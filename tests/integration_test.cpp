// Cross-module integration checks: protocols vs. the centralized optimum,
// synchronous vs. asynchronous realizations, and end-to-end determinism.

#include <gtest/gtest.h>

#include "core/async/async_protocols.hpp"
#include "core/generators.hpp"
#include "core/protocols/registry.hpp"
#include "core/engine.hpp"
#include "core/satisfaction.hpp"
#include "opt/satisfaction.hpp"

namespace qoslb {
namespace {

std::vector<int> thresholds_of(const Instance& inst) {
  std::vector<int> out(inst.num_users());
  for (UserId u = 0; u < inst.num_users(); ++u) out[u] = inst.threshold(u, 0);
  return out;
}

TEST(Integration, ProtocolsNeverBeatTheCentralizedOptimum) {
  // Property: on random small instances every protocol's final satisfied
  // count is bounded by the exact flow-based optimum, and the final state is
  // stable under the protocol's own notion.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xoshiro256 rng(seed);
    const Instance inst = make_zipf(24, 3, 1.0, rng);
    const int opt = max_satisfied_identical(thresholds_of(inst), 3);
    for (const char* kind : {"uniform", "adaptive", "admission", "seq-br"}) {
      Xoshiro256 run_rng(seed * 100);
      State state = State::random(inst, run_rng);
      ProtocolSpec spec;
      spec.kind = kind;
      spec.lambda = 0.5;
      const auto protocol = make_protocol(spec);
      EngineConfig config;
      config.max_rounds = 20000;
      const EngineResult result = Engine(config).run(*protocol, state, run_rng);
      EXPECT_LE(static_cast<int>(result.final_satisfied), opt)
          << kind << " seed=" << seed;
      if (result.converged) {
        EXPECT_TRUE(protocol->is_stable(state)) << kind << " seed=" << seed;
      }
    }
  }
}

TEST(Integration, AdmissionReachesOptimumOnFeasibleInstances) {
  // On feasible instances the optimum is n and the admission protocol
  // reaches it.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Xoshiro256 rng(seed);
    const Instance inst = make_uniform_feasible(48, 6, 0.5, 1.3, rng);
    ASSERT_TRUE(all_satisfiable(thresholds_of(inst), 6));
    State state = State::random(inst, rng);
    ProtocolSpec spec;
    spec.kind = "admission";
    const auto protocol = make_protocol(spec);
    const EngineResult result = Engine().run(*protocol, state, rng);
    EXPECT_TRUE(result.all_satisfied) << "seed=" << seed;
  }
}

TEST(Integration, SyncAndAsyncAdmissionAgreeOnOutcome) {
  // Both realizations of P4 must fully satisfy the same feasible instances.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Xoshiro256 rng(seed);
    const Instance inst = make_uniform_feasible(60, 6, 0.4, 1.2, rng);

    State state = State::random(inst, rng);
    ProtocolSpec spec;
    spec.kind = "admission";
    const auto protocol = make_protocol(spec);
    const EngineResult sync = Engine().run(*protocol, state, rng);

    EngineConfig config;
    config.seed = seed;
    const AsyncRunResult async = run_async_admission(inst, config);

    EXPECT_TRUE(sync.all_satisfied) << "seed=" << seed;
    EXPECT_TRUE(async.all_satisfied) << "seed=" << seed;
  }
}

TEST(Integration, EquilibriumStatesSurviveFurtherRounds) {
  // Once converged, more protocol rounds change nothing that matters: the
  // satisfied count stays maximal for the reached equilibrium.
  Xoshiro256 rng(42);
  const Instance inst = make_uniform_feasible(64, 8, 0.5, 1.0, rng);
  State state = State::random(inst, rng);
  ProtocolSpec spec;
  spec.kind = "admission";
  const auto protocol = make_protocol(spec);
  const EngineResult first = Engine().run(*protocol, state, rng);
  ASSERT_TRUE(first.all_satisfied);
  Counters counters;
  for (int i = 0; i < 20; ++i) protocol->step(state, rng, counters);
  EXPECT_EQ(state.count_satisfied(), state.num_users());
  EXPECT_EQ(counters.migrations, 0u);
}

TEST(Integration, HeterogeneousCapacitiesEndToEnd) {
  Xoshiro256 rng(17);
  const Instance inst = make_related_capacities(80, 8, 0.3, 3, rng);
  State state = State::all_on(inst, 0);
  ProtocolSpec spec;
  spec.kind = "adaptive";
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 50000;
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
  state.check_invariants();
}

TEST(Integration, OverloadedInstanceSettlesNearCapacity) {
  // Overload factor 2: roughly half the users can be satisfied; the
  // admission protocol should reach a stable state filling most capacity.
  Xoshiro256 rng(23);
  const Instance inst = make_overloaded(64, 4, 2.0);  // thresholds 8
  // All users start on resource 0; the three other resources fill up to
  // their 8-user capacity, the remaining 40 users stay stuck on resource 0.
  State state = State::all_on(inst, 0);
  ProtocolSpec spec;
  spec.kind = "admission";
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 50000;
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.all_satisfied);
  EXPECT_EQ(result.final_satisfied, 24u);
}

TEST(Integration, OverloadedBalancedStartIsADeadlockEquilibrium) {
  // A balanced random start on an overloaded instance is already a
  // satisfaction equilibrium with (near-)zero satisfied users — the extreme
  // price-of-anarchy case E7 quantifies: no single migration can help, so
  // every protocol stops immediately.
  const Instance inst = make_overloaded(64, 4, 2.0);  // thresholds 8
  State state = State::round_robin(inst);             // 16 users everywhere
  Xoshiro256 rng(29);
  ProtocolSpec spec;
  spec.kind = "admission";
  const auto protocol = make_protocol(spec);
  const EngineResult result = Engine().run(*protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.final_satisfied, 0u);
}

}  // namespace
}  // namespace qoslb
