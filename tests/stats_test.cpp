#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"
#include "stats/bootstrap.hpp"
#include "stats/histogram.hpp"
#include "stats/quantile.hpp"
#include "stats/regression.hpp"
#include "stats/replication.hpp"
#include "stats/summary.hpp"

namespace qoslb {
namespace {

TEST(RunningStat, MatchesNaiveFormulas) {
  RunningStat stat;
  const std::vector<double> data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double x : data) stat.add(x);
  EXPECT_EQ(stat.count(), data.size());
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  EXPECT_NEAR(stat.sum(), 40.0, 1e-12);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_TRUE(std::isnan(stat.min()));
}

TEST(RunningStat, SingleValue) {
  RunningStat stat;
  stat.add(3.5);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.stddev(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  Xoshiro256 rng(1);
  RunningStat whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = uniform_real(rng, -5, 5);
    whole.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Quantile, KnownValues) {
  const std::vector<double> data = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.25), 2.0);
  // Type-7 interpolation: q=0.1 over 5 points -> h=0.4 -> 1.4.
  EXPECT_NEAR(quantile(data, 0.1), 1.4, 1e-12);
}

TEST(Quantile, UnsortedInputHandled) {
  const std::vector<double> data = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(data), 3.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> data = {7.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.9), 7.0);
}

TEST(Quantile, RejectsEmptyAndBadQ) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
  const std::vector<double> data = {1.0};
  EXPECT_THROW(quantile(data, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(data, 1.1), std::invalid_argument);
}

TEST(Iqr, KnownSpread) {
  const std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(iqr(data), 4.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.9);   // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(-1.0);  // underflow -> bucket 0
  h.add(10.0);  // overflow -> bucket 4
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count(0), 3u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.5);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.75);
  h.add(0.8);
  const std::string text = h.render();
  EXPECT_NE(text.find("#"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramQuantile, EmptyReturnsLo) {
  Histogram h(2.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 2.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesLinearly) {
  Histogram h(0.0, 1.0, 1);
  for (int i = 0; i < 100; ++i) h.add(0.5);
  // All mass in the one bucket: the quantile sweeps its width linearly.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.99);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramQuantile, KnownPercentilesOnUniformFill) {
  Histogram h(0.0, 100.0, 100);
  // One sample per unit bucket: the empirical CDF is the identity, so
  // p50/p99/p999 read straight off the axis (within one bucket width).
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.quantile(0.999), 99.9, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(HistogramQuantile, SaturatedHistogramClampsToTheRangeEdges) {
  Histogram h(0.0, 10.0, 5);
  // Everything out of range: overflow reads as hi, underflow as lo — p999 of
  // a saturated histogram is the range edge, not an extrapolation.
  for (int i = 0; i < 90; ++i) h.add(1000.0);
  for (int i = 0; i < 10; ++i) h.add(-1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.05), 0.0);
  // The edge buckets' counts include the clamped mass, but an in-range
  // sample still interpolates within its own bucket: rank 10.5 of 101 sits
  // halfway through the single [8,10) sample.
  h.add(9.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.09), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(10.5 / 101.0), 9.0);
}

TEST(HistogramQuantile, MixedInRangeAndOverflow) {
  Histogram h(0.0, 8.0, 4);
  h.add(1.0);   // bucket [0,2)
  h.add(3.0);   // bucket [2,4)
  h.add(5.0);   // bucket [4,6)
  h.add(99.0);  // overflow -> reads as 8
  // Rank 3 of 4 lands at the top of the third bucket; rank 4 is overflow.
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 6.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.0);
}

TEST(HistogramQuantile, RejectsOutOfRangeOrder) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(Regression, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};  // y = 1 + 2x
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyLineStillCloseFit) {
  Xoshiro256 rng(5);
  std::vector<double> x, y;
  for (int i = 1; i <= 200; ++i) {
    x.push_back(i);
    y.push_back(4.0 - 0.5 * i + uniform_real(rng, -0.1, 0.1));
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, -0.5, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Regression, ConstantXDegenerates) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Regression, Log2FitRecognizesLogGrowth) {
  std::vector<double> x, y;
  for (int k = 3; k <= 16; ++k) {
    x.push_back(std::pow(2.0, k));
    y.push_back(5.0 + 1.5 * k);  // y = 5 + 1.5 log2(x)
  }
  const LinearFit fit = fit_log2(x, y);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, PowerFitRecoversExponent) {
  std::vector<double> x, y;
  for (int k = 1; k <= 12; ++k) {
    const double v = std::pow(2.0, k);
    x.push_back(v);
    y.push_back(3.0 * v * v);  // y = 3 x^2
  }
  const LinearFit fit = fit_power(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(std::pow(2.0, fit.intercept), 3.0, 1e-6);
}

TEST(Regression, RejectsBadInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(fit_linear(one, one), std::invalid_argument);
  const std::vector<double> x = {0.0, 1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(fit_log2(x, y), std::invalid_argument);
}

TEST(Bootstrap, CoversTrueMeanOfTightSample) {
  std::vector<double> sample(100, 5.0);
  for (std::size_t i = 0; i < sample.size(); ++i)
    sample[i] += (i % 2 == 0 ? 0.01 : -0.01);
  const ConfidenceInterval ci = bootstrap_mean_ci(sample);
  EXPECT_NEAR(ci.point, 5.0, 1e-9);
  EXPECT_LE(ci.lo, 5.0);
  EXPECT_GE(ci.hi, 5.0);
  EXPECT_LT(ci.hi - ci.lo, 0.01);
}

TEST(Bootstrap, WidensWithVariance) {
  Xoshiro256 rng(9);
  std::vector<double> tight, wide;
  for (int i = 0; i < 200; ++i) {
    tight.push_back(uniform_real(rng, 4.9, 5.1));
    wide.push_back(uniform_real(rng, 0.0, 10.0));
  }
  const auto ci_tight = bootstrap_mean_ci(tight);
  const auto ci_wide = bootstrap_mean_ci(wide);
  EXPECT_LT(ci_tight.hi - ci_tight.lo, ci_wide.hi - ci_wide.lo);
}

TEST(Bootstrap, RejectsBadArguments) {
  const std::vector<double> empty;
  EXPECT_THROW(bootstrap_mean_ci(empty), std::invalid_argument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(bootstrap_mean_ci(one, 1.5), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean_ci(one, 0.05, 3), std::invalid_argument);
}

TEST(Replicate, DeterministicAcrossCalls) {
  const auto body = [](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    return uniform_real(rng);
  };
  const auto a = replicate(42, 16, body);
  const auto b = replicate(42, 16, body);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(Replicate, ThreadedMatchesSerial) {
  const auto body = [](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    double acc = 0;
    for (int i = 0; i < 100; ++i) acc += uniform_real(rng);
    return acc;
  };
  const auto serial = replicate(7, 24, body, /*threads=*/1);
  const auto threaded = replicate(7, 24, body, /*threads=*/4);
  EXPECT_EQ(serial.samples, threaded.samples);
}

TEST(Replicate, AggregatesIntoStat) {
  const auto r = replicate(1, 10, [](std::uint64_t) { return 2.0; });
  EXPECT_EQ(r.stat.count(), 10u);
  EXPECT_DOUBLE_EQ(r.stat.mean(), 2.0);
}

TEST(Replicate, RejectsZeroReplications) {
  EXPECT_THROW(replicate(1, 0, [](std::uint64_t) { return 0.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
