// Deliberately absent from the fixture CMakeLists.txt: QL004 reachability.
namespace fx {

int orphan() { return 1; }

}  // namespace fx
