// QL016 fixture (clean): a composed phase-gauge registration whose literal
// fragments are covered by the catalog's `phase/<name>_seconds` entry, a
// documented key, a dynamic (literal-free) registration, and a per-line
// allow() suppression. Never compiled.
#include <string>

namespace fx {

struct Registry {
  int gauge(const std::string& name);
};

int emit(Registry& m, const std::string& phase, std::string& out) {
  out += "{\"round\":2}\n";
  // qoslb-lint: allow(QL016)
  out += "{\"undocumented_but_allowed\":1}\n";
  m.gauge(phase);  // dynamic name: owned by the registering caller's site
  return m.gauge(std::string("phase/") + phase + "_seconds");
}

}  // namespace fx
