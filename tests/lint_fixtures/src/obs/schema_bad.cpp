// QL016 fixture: one JSONL key and one metric name that the fixture catalog
// (docs/observability.md) never documents — both must fire. The `kind` key
// on the same line is documented and must not. Never compiled.
#include <string>

namespace fx {

struct Registry {
  int counter(const std::string& name);
};

int emit(Registry& m, std::string& out) {
  out += "{\"kind\":\"row\",\"mystery\":1}\n";
  return m.counter("engine/bogus_counter");
}

}  // namespace fx
