// QL007 fixture (clean): steady-clock reads are legal inside src/obs/ —
// this mirrors the sanctioned read in the real obs::SteadyClock::now().
// Never compiled.
#include <chrono>

namespace fx {

double obs_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fx
