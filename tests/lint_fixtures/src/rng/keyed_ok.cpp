#include <random>

namespace fx {

// Standard engines are legal inside src/rng/ — this models the one place
// keyed wrappers over raw engines get built.
unsigned keyed_draw(unsigned seed) {
  std::mt19937 gen(seed);
  return gen();
}

}  // namespace fx
