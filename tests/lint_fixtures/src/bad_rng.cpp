#include <random>

namespace fx {

int draw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

}  // namespace fx
