// QL008 fixture: the serializer/deserializer field lists disagree in both
// directions — "beta" is written but never read, "gamma" is read but never
// written. "alpha" agrees and must not be flagged; the quoted word "delta"
// appears only in this comment and must be ignored.
#include <iostream>
#include <string>

namespace fixture {

struct Blob {
  unsigned long alpha = 0;
  unsigned long beta = 0;
  unsigned long gamma = 0;
};

void write_snapshot(std::ostream& out, const Blob& blob) {
  out << "alpha " << blob.alpha << '\n';
  out << "beta " << blob.beta << '\n';
}

Blob read_snapshot(std::istream& in) {
  Blob blob;
  std::string word;
  while (in >> word) {
    if (word == "alpha") in >> blob.alpha;
    if (word == "gamma") in >> blob.gamma;
  }
  return blob;
}

}  // namespace fixture
