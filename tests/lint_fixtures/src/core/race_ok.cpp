// QL012 exception fixture: the sanctioned shape. The step hook only stages
// into a migration buffer; the State mutation happens in commit_round(),
// which runs single-threaded between rounds.

namespace racefix {

struct BufferedState {
  void move(int user, int resource);
};

struct MigrationLog {
  int target[8];
};

struct BufferedProtocol {
  void step_users(MigrationLog& log) { log.target[0] = 3; }
  void commit_round(BufferedState& state) { state.move(0, 3); }
};

}  // namespace racefix
