#pragma once

// QL011 fixture: a core algorithm header reaching up into the simulation
// harness and telemetry layers. Both edges invert the layer map; the rng
// include is the control — core may depend on the layers below it.
#include "sim/accounting.hpp"
#include "obs/telemetry.hpp"
#include "rng/philox.hpp"

struct LayeredThing {
  int depth = 0;
};
