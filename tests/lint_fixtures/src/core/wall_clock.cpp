#include <chrono>
#include <cstdlib>

#include "util/timer.hpp"

namespace fx {

long wall_seed() {
  const auto now = std::chrono::system_clock::now();
  const char* env = std::getenv("FX_SEED");
  return env != nullptr ? 0L : now.time_since_epoch().count();
}

}  // namespace fx
