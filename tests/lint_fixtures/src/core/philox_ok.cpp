// QL013 exception fixture: the key parameter is clean only interprocedurally
// — every call site of draw() passes an expression routed through mix64(),
// which the dataflow walk must discover by chasing the parameter position.
#include "rng/philox.hpp"

namespace keyfix {

unsigned long long draw(unsigned long long key) {
  PhiloxEngine rng(key, 1);
  return rng.next();
}

unsigned long long replicate(unsigned long long seed) { return draw(mix64(seed)); }

}  // namespace keyfix
