// QL012 fixture: a protocol step hook mutating the shared state directly —
// once inline, once through a helper, so the rule must walk the call graph.

namespace racefix {

struct ShardState {
  void move(int user, int resource);
  int loads[8];
};

void apply_now(ShardState& state, int user) {
  state.loads[user] = 0;
}

struct RacyProtocol {
  void step_users(ShardState& state) {
    state.move(1, 2);
    apply_now(state, 1);
  }
};

}  // namespace racefix
