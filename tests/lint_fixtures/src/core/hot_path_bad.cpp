// QL015 fixture: a lock taken inside a step hook and an allocation in a
// helper the hook calls — the second hit requires the reachability walk.
#include <mutex>
#include <vector>

namespace hotfix {

int* grow_scratch(std::vector<int>& scratch) {
  scratch.reserve(64);
  return new int[16];
}

struct NoisyProtocol {
  void step_users(std::vector<int>& scratch) {
    std::lock_guard<std::mutex> hold(gate_);
    scratch.push_back(*grow_scratch(scratch));
  }
  std::mutex gate_;
};

}  // namespace hotfix
