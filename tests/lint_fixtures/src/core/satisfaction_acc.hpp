#pragma once

namespace fx {

// qoslb-lint: allow(QL005) fixture: suppression on the preceding line
inline float suppressed_ratio() { return 0.5F; }

inline double accumulate(const double* xs, int n) {
  float drifty = 0.0F;
  for (int i = 0; i < n; ++i) drifty += static_cast<float>(xs[i]);
  return drifty;
}

}  // namespace fx
