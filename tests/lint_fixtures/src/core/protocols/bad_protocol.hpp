#pragma once

namespace fx {

class Protocol;

// Claims active-set compatibility but never declares step_users(): the
// QL004 fixture violation.
class BadProtocol : public Protocol {
 public:
  bool active_set_compatible() const { return true; }
};

}  // namespace fx
