// Miniature protocol registry mirroring the real table idiom, for the QL004
// and QL009 cross-file contract checks. Entries: two consistent ones (one
// through a delegating builder), one declaring active_set over a class
// without step_users(), one understating a class that is active-set capable,
// and a restricted-assignment trio — overstated, understated, and a marked
// class whose step_users() skips the reachable-set helpers.
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/protocols/bad_protocol.hpp"
#include "core/protocols/good_protocol.hpp"
#include "core/protocols/r_bad_protocol.hpp"
#include "core/protocols/r_good_protocol.hpp"
#include "core/protocols/r_unsafe_protocol.hpp"

namespace fx {

struct ProtocolSpec {
  std::string kind;
};

class Protocol {
 public:
  virtual ~Protocol() = default;
};

struct Info {
  std::string name;
  std::string description;
  bool active_set = false;
};

struct Entry {
  Info info;
  std::function<std::unique_ptr<Protocol>(const ProtocolSpec&)> build;
};

std::unique_ptr<Protocol> make_good(const ProtocolSpec& spec) {
  (void)spec;
  return std::make_unique<GoodProtocol>();
}

const std::vector<Entry>& entries() {
  static const std::vector<Entry> kEntries = {
      {{"good", "consistent active-set entry", /*active_set=*/true},
       [](const ProtocolSpec&) { return std::make_unique<GoodProtocol>(); }},
      {{"good-delegated", "resolves through a helper", /*active_set=*/true},
       make_good},
      {{"bad", "declares active set, class lacks the hook",
        /*active_set=*/true},
       [](const ProtocolSpec&) { return std::make_unique<BadProtocol>(); }},
      {{"understated", "class is active-set capable, entry says false"},
       [](const ProtocolSpec&) { return std::make_unique<GoodProtocol>(); }},
      {{"r-good", "consistent restricted entry", /*restricted=*/true},
       [](const ProtocolSpec&) { return std::make_unique<RGoodProtocol>(); }},
      {{"r-bad", "marked restricted, class never opts in",
        /*restricted=*/true},
       [](const ProtocolSpec&) { return std::make_unique<RBadProtocol>(); }},
      {{"r-understated", "class opts in, entry says false"},
       [](const ProtocolSpec&) { return std::make_unique<RGoodProtocol>(); }},
      {{"r-unsafe", "marked and opted in, but samples raw resource ids",
        /*restricted=*/true},
       [](const ProtocolSpec&) {
         return std::make_unique<RUnsafeProtocol>();
       }},
  };
  return kEntries;
}

}  // namespace fx
