#pragma once

namespace fx {

class Protocol;
class State;

// Returns true and is marked, but its step_users() samples raw resource ids
// instead of going through the reachable-set helpers: the QL009 unsafe-draw
// fixture violation.
class RUnsafeProtocol : public Protocol {
 public:
  bool restricted_assignment_compatible() const { return true; }
  void step_users(const State& state, const int* users, int count) {
    for (int i = 0; i < count; ++i) raw_draw(users[i]);
  }

 private:
  int raw_draw(int user);
};

}  // namespace fx
