#pragma once

namespace fx {

class Protocol;

// Consistent active-set protocol: declares both halves of the contract.
class GoodProtocol : public Protocol {
 public:
  bool active_set_compatible() const { return true; }
  void step_users(const int* users, int count);
};

}  // namespace fx
