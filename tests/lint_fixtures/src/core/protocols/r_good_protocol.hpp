#pragma once

namespace fx {

class Protocol;
class State;

// Consistent restricted-assignment protocol: marked in the registry, the
// class returns true, and step_users() draws through the reachable helper.
class RGoodProtocol : public Protocol {
 public:
  bool restricted_assignment_compatible() const { return true; }
  void step_users(const State& state, const int* users, int count) {
    for (int i = 0; i < count; ++i) sample_reachable(state, users[i]);
  }

 private:
  int sample_reachable(const State& state, int user);
};

}  // namespace fx
