#pragma once

namespace fx {

class Protocol;
class State;

// Never opts in to restricted assignment; the registry marks it restricted
// anyway: the QL009 overstated-entry fixture violation.
class RBadProtocol : public Protocol {
 public:
  void step_users(const State& state, const int* users, int count);
};

}  // namespace fx
