#include <unordered_map>

namespace fx {

int sum_loads(const std::unordered_map<int, int>& by_resource) {
  std::unordered_map<int, int> local = by_resource;
  int total = 0;
  for (const auto& kv : local) total += kv.second;
  const auto first = local.begin();
  if (first != local.cend()) total += first->second;
  return total;
}

}  // namespace fx
