namespace fx {

float potential_of(const float* costs, int n) {
  float total = 0.0F;
  for (int i = 0; i < n; ++i) total += costs[i];
  return total;
}

}  // namespace fx
