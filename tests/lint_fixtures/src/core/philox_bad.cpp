// QL013 fixture: a counter-based engine keyed with a raw seed. Nothing in
// the key expression — or in any caller, because there are none — flows
// through the keyed-stream helpers, so the construction must be flagged.
#include "rng/philox.hpp"

namespace keyfix {

unsigned long long resample(unsigned long long raw_seed) {
  PhiloxEngine rng(raw_seed, 0);
  return rng.next();
}

}  // namespace keyfix
