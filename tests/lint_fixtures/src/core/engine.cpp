// QL011 exception fixture: src/core/engine.cpp is the sanctioned
// orchestration seam, so the very includes that fire in layering_bad.hpp
// are allowed here.
#include "sim/accounting.hpp"
#include "obs/telemetry.hpp"

int fixture_engine_marker() { return 0; }
