#pragma once

#include <iosfwd>

// QL014 fixture: a member-hook serializer whose field list misses one
// persistent member (omega_). span_rounds_ lives on disk under its
// historical name and cached_best_ is derived state — both annotated, both
// allowed.
struct WindowTracker {
  void snapshot_write(std::ostream& out) const {
    out << "alpha " << alpha_ << '\n';
    out << "window " << span_rounds_ << '\n';
  }
  void snapshot_read(std::istream& in) {
    read_field(in, "alpha", alpha_);
    read_field(in, "window", span_rounds_);
  }

  double alpha_ = 0.0;
  long span_rounds_ = 0;  // qoslb-snapshot: as(window)
  long omega_ = 0;
  long cached_best_ = 0;  // qoslb-snapshot: transient
};
