// QL015 exception fixture: a deliberate one-shot arena grab on first entry,
// accepted per call site with the allow() suppression.
#include <vector>

namespace hotfix {

struct WarmupProtocol {
  void step_users(std::vector<int*>& slabs) {
    if (!slabs.empty()) return;
    slabs.push_back(new int[64]);  // qoslb-lint: allow(QL015)
  }
};

}  // namespace hotfix
