namespace fx {

int add(int a, int b) { return a + b; }

}  // namespace fx
