// qoslb-lint: allow-file(QL001) fixture: file-wide suppression
#include <algorithm>
#include <random>
#include <vector>

namespace fx {

void scramble(std::vector<int>& v) {
  std::mt19937 gen(1);
  std::shuffle(v.begin(), v.end(), gen);
}

}  // namespace fx
