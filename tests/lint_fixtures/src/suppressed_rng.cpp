#include <random>

namespace fx {

int draw_seeded() {
  std::mt19937 gen(7);  // qoslb-lint: allow(QL001) fixture: same-line allow
  return static_cast<int>(gen());
}

}  // namespace fx
