// QL010 fixture: per-round thread spawning inside src/sim/ — a std::thread
// construction, a std::jthread, a std::async dispatch, and a raw
// pthread_create must each be flagged; the std::thread::hardware_concurrency
// member read must not. Never compiled.
#include <future>
#include <pthread.h>
#include <thread>

namespace fx {

unsigned probe_width() {
  return std::thread::hardware_concurrency();
}

void run_round_with_fresh_threads() {
  std::thread worker([] {});
  std::jthread scoped([] {});
  auto pending = std::async([] { return 1; });
  pthread_t raw;
  pthread_create(&raw, nullptr, nullptr, nullptr);
  worker.join();
  (void)pending;
  (void)raw;
}

}  // namespace fx
