// QL007 fixture: steady-clock use inside src/sim/ — both a direct
// std::chrono::steady_clock read and a SteadyClock instantiation must be
// flagged. Never compiled.
#include <chrono>

namespace fx {

double sim_elapsed() {
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<double>(t0.time_since_epoch().count());
}

void* make_core_clock() { return new qoslb::obs::SteadyClock(); }

}  // namespace fx
