// QL010 exemption fixture: sim/worker_pool.* is the single sanctioned spawn
// site — the same std::thread construction that is banned everywhere else in
// the simulation core yields no findings here. Never compiled.
#include <thread>

namespace fx {

void spawn_persistent_worker() {
  std::thread worker([] {});
  worker.detach();
}

}  // namespace fx
