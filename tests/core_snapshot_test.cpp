// Crash-consistent checkpoint/restore (core/snapshot.hpp, docs/faults.md).
//
// The contract under test: a run killed at any checkpointed round boundary
// and restored through the on-disk SnapshotV1 text format continues to a
// final state that is bit-identical to the uninterrupted run — same
// assignment, liveness, counters, round count, and degradation metrics —
// for every sharded protocol, every thread count in {1,2,4,8}, and both
// engine modes, including kills taken mid-dip with churn events still
// pending. Plus: the text format round-trips value-exactly, rejects
// malformed and version-skewed input loudly, and the state fingerprint is
// sensitive to both assignment and liveness.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "net/generators.hpp"
#include "qoslb.hpp"

namespace qoslb {
namespace {

Instance test_instance(std::size_t n, std::size_t m, std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  return make_uniform_feasible(n, m, 0.5, 1.5, rng);
}

std::vector<ResourceId> assignment_of(const State& state) {
  std::vector<ResourceId> assignment(state.num_users());
  for (UserId u = 0; u < state.num_users(); ++u)
    assignment[u] = state.resource_of(u);
  return assignment;
}

void expect_counters_eq(const Counters& a, const Counters& b,
                        const std::string& label) {
  EXPECT_EQ(a.probes, b.probes) << label;
  EXPECT_EQ(a.migrate_requests, b.migrate_requests) << label;
  EXPECT_EQ(a.grants, b.grants) << label;
  EXPECT_EQ(a.rejects, b.rejects) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
}

struct ShardedCase {
  std::string kind;
  double lambda;
};

const std::vector<ShardedCase>& sharded_cases() {
  static const std::vector<ShardedCase> kCases = {
      {"uniform", 0.5},      {"adaptive", 1.0},      {"admission", 1.0},
      {"nbr-uniform", 0.5},  {"nbr-admission", 1.0}, {"berenbrink", 1.0}};
  return kCases;
}

std::string case_name(const ::testing::TestParamInfo<ShardedCase>& info) {
  std::string name = info.param.kind;
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

/// The churn plan used by the kill/restore matrix: two failures, two
/// recoveries, so a mid-schedule kill carries an open dip and pending
/// events across the checkpoint.
ChurnPlan test_plan() {
  ChurnPlan plan;
  plan.fail(2, 3).fail(6, 5).recover(30, 3).recover(40, 5);
  return plan;
}

// ---- kill/restore bit-identity across the full matrix ----

class KillRestore : public ::testing::TestWithParam<ShardedCase> {};

TEST_P(KillRestore, ResumedRunMatchesUninterruptedEverywhere) {
  const ShardedCase& param = GetParam();
  const Instance instance = test_instance(1200, 24);
  const Graph ring = make_ring(24);
  const auto make_proto = [&] {
    ProtocolSpec spec;
    spec.kind = param.kind;
    spec.lambda = param.lambda;
    spec.graph = &ring;
    return make_protocol(spec);
  };

  // Uninterrupted baseline (threads=1 dense is the reference realization;
  // thread/mode invariance of the baseline itself is covered by
  // core_engine_test and ChurnedRunIsThreadAndModeInvariant).
  EngineConfig config;
  config.max_rounds = 300;
  config.shard_size = 128;
  config.churn = test_plan();
  config.invariant_check_period = 16;
  std::vector<SnapshotV1> snapshots;
  config.snapshot_rounds = {1, 10, 35};  // pre-dip, mid-dip, pre-recovery
  config.snapshot_sink = [&snapshots](const SnapshotV1& snapshot) {
    snapshots.push_back(snapshot);
  };
  State baseline_state = State::all_on(instance, 0);
  const auto baseline_protocol = make_proto();
  Xoshiro256 rng(77);
  const EngineResult baseline =
      Engine(config).run(*baseline_protocol, baseline_state, rng);
  ASSERT_EQ(snapshots.size(), 3u)
      << param.kind << ": baseline ended at round " << baseline.rounds;
  const std::vector<ResourceId> baseline_assignment =
      assignment_of(baseline_state);
  const std::uint64_t baseline_hash = state_hash(baseline_state);

  EngineConfig resume_config = config;
  resume_config.snapshot_rounds.clear();
  resume_config.snapshot_sink = nullptr;
  for (const SnapshotV1& snapshot : snapshots) {
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      for (const EngineMode mode : {EngineMode::kDense, EngineMode::kActive}) {
        const std::string label =
            param.kind + " kill=" + std::to_string(snapshot.next_round) +
            " threads=" + std::to_string(threads) +
            (mode == EngineMode::kActive ? " active" : " dense");
        // Kill: round-trip the checkpoint through the text format, as a
        // restart from disk would.
        std::stringstream disk;
        write_snapshot(disk, snapshot);
        const SnapshotV1 restored = read_snapshot(disk);

        const Instance resumed_instance = restored.make_instance();
        State resumed_state = restored.make_state(resumed_instance);
        const auto resumed_protocol = make_proto();
        resume_config.threads = threads;
        resume_config.mode = mode;
        const EngineResult resumed = Engine(resume_config)
                                         .resume(*resumed_protocol, restored,
                                                 resumed_state);
        resumed_state.check_invariants();

        EXPECT_EQ(assignment_of(resumed_state), baseline_assignment) << label;
        EXPECT_EQ(state_hash(resumed_state), baseline_hash) << label;
        EXPECT_EQ(resumed.rounds, baseline.rounds) << label;
        EXPECT_EQ(resumed.converged, baseline.converged) << label;
        EXPECT_EQ(resumed.final_satisfied, baseline.final_satisfied) << label;
        expect_counters_eq(resumed.counters, baseline.counters, label);
        EXPECT_EQ(resumed.churn.failures, baseline.churn.failures) << label;
        EXPECT_EQ(resumed.churn.recoveries, baseline.churn.recoveries)
            << label;
        EXPECT_EQ(resumed.churn.evicted, baseline.churn.evicted) << label;
        EXPECT_EQ(resumed.churn.max_dip_depth, baseline.churn.max_dip_depth)
            << label;
        EXPECT_EQ(resumed.churn.max_recovery_rounds,
                  baseline.churn.max_recovery_rounds)
            << label;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShardedProtocols, KillRestore,
                         ::testing::ValuesIn(sharded_cases()), case_name);

// ---- save_snapshot convenience + format round-trip ----

TEST(Snapshot, SaveSnapshotRoundTripsValueExactly) {
  // adaptive carries real cross-round protocol state, so this exercises the
  // protocol_state block too.
  const Instance instance = test_instance(500, 16);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "adaptive";
  spec.lambda = 1.0;
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 200;
  config.churn.fail(1, 2).recover(8, 2);
  Xoshiro256 rng(5);
  const SnapshotV1 snapshot =
      Engine(config).save_snapshot(*protocol, state, rng, 4);

  EXPECT_EQ(snapshot.next_round, 4u);
  EXPECT_EQ(snapshot.protocol, protocol->name());
  EXPECT_FALSE(snapshot.protocol_state.empty());
  EXPECT_EQ(snapshot.live[2], 0) << "checkpoint taken mid-failure";

  std::stringstream disk;
  write_snapshot(disk, snapshot);
  const SnapshotV1 restored = read_snapshot(disk);
  EXPECT_EQ(restored.protocol, snapshot.protocol);
  EXPECT_EQ(restored.next_round, snapshot.next_round);
  EXPECT_EQ(restored.master_seed, snapshot.master_seed);
  EXPECT_EQ(restored.capacities, snapshot.capacities);  // bit-exact doubles
  EXPECT_EQ(restored.requirements, snapshot.requirements);
  EXPECT_EQ(restored.assignment, snapshot.assignment);
  EXPECT_EQ(restored.live, snapshot.live);
  EXPECT_EQ(restored.counters.probes, snapshot.counters.probes);
  EXPECT_EQ(restored.counters.migrations, snapshot.counters.migrations);
  EXPECT_EQ(restored.counters.rounds, snapshot.counters.rounds);
  EXPECT_EQ(restored.churn.stats.failures, snapshot.churn.stats.failures);
  EXPECT_EQ(restored.churn.stats.evicted, snapshot.churn.stats.evicted);
  EXPECT_EQ(restored.churn.stats.max_dip_depth,
            snapshot.churn.stats.max_dip_depth);
  EXPECT_EQ(restored.churn.in_dip, snapshot.churn.in_dip);
  EXPECT_EQ(restored.churn.baseline_satisfied,
            snapshot.churn.baseline_satisfied);
  EXPECT_EQ(restored.protocol_state, snapshot.protocol_state);
}

TEST(Snapshot, SaveSnapshotRejectsUnreachableRound) {
  const Instance instance = test_instance(200, 8);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 3;
  Xoshiro256 rng(5);
  EXPECT_THROW(Engine(config).save_snapshot(*protocol, state, rng, 100),
               std::invalid_argument);
}

// ---- malformed input is rejected loudly ----

std::string valid_snapshot_text() {
  SnapshotV1 snapshot;
  snapshot.protocol = "uniform(0.5)";
  snapshot.next_round = 7;
  snapshot.master_seed = 42;
  snapshot.capacities = {2.0, 3.0};
  snapshot.requirements = {1.0, 1.0, 1.0};
  snapshot.assignment = {0, 1, 0};
  snapshot.live = {1, 1};
  std::ostringstream out;
  write_snapshot(out, snapshot);
  return out.str();
}

SnapshotV1 parse(const std::string& text) {
  std::istringstream in(text);
  return read_snapshot(in);
}

TEST(Snapshot, ReaderAcceptsItsOwnWriter) {
  const SnapshotV1 snapshot = parse(valid_snapshot_text());
  EXPECT_EQ(snapshot.protocol, "uniform(0.5)");
  EXPECT_EQ(snapshot.next_round, 7u);
  const Instance instance = snapshot.make_instance();
  EXPECT_EQ(instance.num_users(), 3u);
  EXPECT_EQ(instance.num_resources(), 2u);
  const State state = snapshot.make_state(instance);
  EXPECT_EQ(state.resource_of(1), 1u);
}

TEST(Snapshot, ReaderRejectsUnknownVersion) {
  std::string text = valid_snapshot_text();
  const std::size_t pos = text.find("v2");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "v3");
  EXPECT_THROW(parse(text), std::invalid_argument);
}

TEST(Snapshot, ReaderAcceptsLegacyV1WithoutRateModelBlock) {
  // A v1 checkpoint has no rate_model block; it must read back as the
  // uniform model, exactly as pre-v2 writers produced it.
  std::string text = valid_snapshot_text();
  const std::size_t magic = text.find("v2");
  ASSERT_NE(magic, std::string::npos);
  text.replace(magic, 2, "v1");
  const std::size_t block = text.find("rate_model uniform\n");
  ASSERT_NE(block, std::string::npos);
  text.erase(block, std::string("rate_model uniform\n").size());
  const SnapshotV1 snapshot = parse(text);
  EXPECT_TRUE(snapshot.rate_model.is_uniform());
  EXPECT_EQ(snapshot.make_instance().num_users(), 3u);
}

TEST(Snapshot, ReaderRejectsTruncation) {
  const std::string text = valid_snapshot_text();
  // Chop at several depths; every prefix must fail, never crash or return
  // a half-built snapshot.
  for (const double frac : {0.15, 0.5, 0.9}) {
    const std::string prefix =
        text.substr(0, static_cast<std::size_t>(text.size() * frac));
    EXPECT_THROW(parse(prefix), std::invalid_argument) << "frac=" << frac;
  }
}

TEST(Snapshot, ReaderRejectsOutOfRangeAssignment) {
  std::string text = valid_snapshot_text();
  const std::size_t pos = text.find("assignment 3");
  ASSERT_NE(pos, std::string::npos);
  // Resource 9 does not exist in a 2-resource world.
  text.replace(text.find('\n', pos) + 1, 1, "9");
  EXPECT_THROW(parse(text), std::invalid_argument);
}

TEST(Snapshot, ReaderRejectsNonBinaryLiveBit) {
  std::string text = valid_snapshot_text();
  const std::size_t pos = text.find("live 2");
  ASSERT_NE(pos, std::string::npos);
  text.replace(text.find('\n', pos) + 1, 1, "7");
  EXPECT_THROW(parse(text), std::invalid_argument);
}

TEST(Snapshot, MakeStateRejectsUsersOnDeadResources) {
  SnapshotV1 snapshot;
  snapshot.protocol = "uniform(0.5)";
  snapshot.capacities = {2.0, 3.0};
  snapshot.requirements = {1.0, 1.0};
  snapshot.assignment = {0, 1};
  snapshot.live = {1, 0};  // user 1 sits on the dead resource
  const Instance instance = snapshot.make_instance();
  EXPECT_THROW(snapshot.make_state(instance), std::invalid_argument);
}

// ---- resume preconditions ----

TEST(Snapshot, ResumeRejectsProtocolMismatch) {
  const Instance instance = test_instance(300, 8);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 100;
  Xoshiro256 rng(9);
  const SnapshotV1 snapshot =
      Engine(config).save_snapshot(*protocol, state, rng, 2);

  ProtocolSpec other_spec;
  other_spec.kind = "admission";
  other_spec.lambda = 1.0;
  const auto other = make_protocol(other_spec);
  const Instance resumed_instance = snapshot.make_instance();
  State resumed_state = snapshot.make_state(resumed_instance);
  EXPECT_THROW(Engine(config).resume(*other, snapshot, resumed_state),
               std::invalid_argument);
}

TEST(Snapshot, ResumeRejectsMismatchedState) {
  const Instance instance = test_instance(300, 8);
  State state = State::all_on(instance, 0);
  ProtocolSpec spec;
  spec.kind = "uniform";
  spec.lambda = 0.5;
  const auto protocol = make_protocol(spec);
  EngineConfig config;
  config.max_rounds = 100;
  Xoshiro256 rng(9);
  const SnapshotV1 snapshot =
      Engine(config).save_snapshot(*protocol, state, rng, 2);

  const Instance resumed_instance = snapshot.make_instance();
  State wrong = snapshot.make_state(resumed_instance);
  wrong.move(0, wrong.resource_of(0) == 0 ? 1 : 0);
  const auto fresh = make_protocol(spec);
  EXPECT_THROW(Engine(config).resume(*fresh, snapshot, wrong),
               std::invalid_argument);
}

// ---- the fingerprint ----

TEST(Snapshot, StateHashSeesAssignmentAndLiveness) {
  const Instance instance = test_instance(50, 4);
  State a = State::all_on(instance, 0);
  State b = State::all_on(instance, 0);
  EXPECT_EQ(state_hash(a), state_hash(b));

  b.move(7, 2);
  EXPECT_NE(state_hash(a), state_hash(b)) << "assignment change must show";
  b.move(7, 0);
  EXPECT_EQ(state_hash(a), state_hash(b));

  b.set_resource_live(3, false);
  EXPECT_NE(state_hash(a), state_hash(b)) << "liveness change must show";
}

}  // namespace
}  // namespace qoslb
