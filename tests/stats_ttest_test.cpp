#include "stats/ttest.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rng/distributions.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

TEST(StudentTCdf, KnownQuantiles) {
  // Standard t-table values.
  EXPECT_NEAR(student_t_cdf(0.0, 10), 0.5, 1e-12);
  EXPECT_NEAR(student_t_cdf(1.812, 10), 0.95, 1e-3);   // t_{0.95,10}
  EXPECT_NEAR(student_t_cdf(2.228, 10), 0.975, 1e-3);  // t_{0.975,10}
  EXPECT_NEAR(student_t_cdf(-2.228, 10), 0.025, 1e-3);
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), 0.975, 1e-3);  // -> normal
}

TEST(StudentTCdf, MonotoneInT) {
  double previous = 0.0;
  for (double t = -5.0; t <= 5.0; t += 0.25) {
    const double cdf = student_t_cdf(t, 7);
    EXPECT_GT(cdf, previous);
    previous = cdf;
  }
}

TEST(Welch, ClearlyDifferentMeans) {
  std::vector<double> a, b;
  Xoshiro256 rng(1);
  for (int i = 0; i < 30; ++i) {
    a.push_back(10.0 + uniform_real(rng, -1, 1));
    b.push_back(13.0 + uniform_real(rng, -1, 1));
  }
  const WelchResult result = welch_t_test(a, b);
  EXPECT_LT(result.t, 0.0);  // mean(a) < mean(b)
  EXPECT_LT(result.p_two_sided, 1e-6);
}

TEST(Welch, SameDistributionIsUsuallyInsignificant) {
  Xoshiro256 rng(2);
  int significant = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 25; ++i) {
      a.push_back(uniform_real(rng));
      b.push_back(uniform_real(rng));
    }
    if (welch_t_test(a, b).p_two_sided < 0.05) ++significant;
  }
  // ~5% false positive rate; allow generous slop.
  EXPECT_LE(significant, 8);
}

TEST(Welch, IdenticalConstantSamples) {
  const std::vector<double> a = {3.0, 3.0, 3.0};
  const WelchResult result = welch_t_test(a, a);
  EXPECT_DOUBLE_EQ(result.p_two_sided, 1.0);
  EXPECT_DOUBLE_EQ(result.t, 0.0);
}

TEST(Welch, ConstantButDifferentSamples) {
  const std::vector<double> a = {3.0, 3.0, 3.0};
  const std::vector<double> b = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(welch_t_test(a, b).p_two_sided, 0.0);
}

TEST(Welch, UnequalVariancesHandled) {
  // Same mean, wildly different variances: no significance expected.
  std::vector<double> tight, wide;
  Xoshiro256 rng(3);
  for (int i = 0; i < 40; ++i) {
    tight.push_back(5.0 + uniform_real(rng, -0.01, 0.01));
    wide.push_back(5.0 + uniform_real(rng, -3.0, 3.0));
  }
  const WelchResult result = welch_t_test(tight, wide);
  EXPECT_GT(result.p_two_sided, 0.05);
  // Welch df collapses toward the wide sample's df.
  EXPECT_LT(result.degrees_of_freedom, 45.0);
}

TEST(Welch, RejectsTinySamples) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW(welch_t_test(one, two), std::invalid_argument);
}


TEST(ChiSquareTail, KnownValues) {
  // chi2 upper tail at the 95th percentile of chi2(k) is 0.05.
  EXPECT_NEAR(chi_square_upper_tail(3.841, 1), 0.05, 2e-3);
  EXPECT_NEAR(chi_square_upper_tail(11.070, 5), 0.05, 2e-3);
  EXPECT_NEAR(chi_square_upper_tail(18.307, 10), 0.05, 2e-3);
  EXPECT_DOUBLE_EQ(chi_square_upper_tail(0.0, 4), 1.0);
}

TEST(ChiSquare, UniformCountsPassGoodnessOfFit) {
  const std::vector<double> observed = {98, 103, 102, 97, 101, 99};
  const std::vector<double> expected(6, 100.0);
  const ChiSquareResult result = chi_square_test(observed, expected);
  EXPECT_GT(result.p_value, 0.9);
}

TEST(ChiSquare, SkewedCountsFail) {
  const std::vector<double> observed = {300, 50, 50, 50, 50, 100};
  const std::vector<double> expected(6, 100.0);
  const ChiSquareResult result = chi_square_test(observed, expected);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquare, RejectsBadInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(chi_square_test(one, one), std::invalid_argument);
  const std::vector<double> obs = {1.0, 2.0};
  const std::vector<double> bad = {1.0, 0.0};
  EXPECT_THROW(chi_square_test(obs, bad), std::invalid_argument);
}

}  // namespace
}  // namespace qoslb
