#include <gtest/gtest.h>

#include <memory>

#include "core/weighted/weighted_generators.hpp"
#include "core/weighted/weighted_instance.hpp"
#include "core/weighted/weighted_protocols.hpp"
#include "core/weighted/weighted_state.hpp"
#include "rng/xoshiro256.hpp"

namespace qoslb {
namespace {

WeightedInstance small_instance() {
  // 3 users: weights 1, 2, 4; thresholds (capacity 10): q=2 -> 5, q=1 -> 10.
  return WeightedInstance({10.0, 10.0}, {2.0, 1.0, 2.0}, {1, 2, 4});
}

TEST(WeightedInstance, ThresholdInWeightUnits) {
  const WeightedInstance inst = small_instance();
  EXPECT_EQ(inst.threshold(0, 0), 5);
  EXPECT_EQ(inst.threshold(1, 0), 7);  // 10 clamped to total weight 7
  EXPECT_EQ(inst.threshold(2, 1), 5);
  EXPECT_EQ(inst.total_weight(), 7u);
}

TEST(WeightedInstance, RejectsBadInput) {
  EXPECT_THROW(WeightedInstance({1.0}, {1.0}, {0}), std::invalid_argument);
  EXPECT_THROW(WeightedInstance({1.0}, {1.0, 1.0}, {1}), std::invalid_argument);
  EXPECT_THROW(WeightedInstance({}, {1.0}, {1}), std::invalid_argument);
}

TEST(WeightedState, LoadsAreWeightSums) {
  const WeightedInstance inst = small_instance();
  const WeightedState state(inst, {0, 0, 1});
  EXPECT_EQ(state.load(0), 3);
  EXPECT_EQ(state.load(1), 4);
  state.check_invariants();
}

TEST(WeightedState, MoveTransfersWeight) {
  const WeightedInstance inst = small_instance();
  WeightedState state(inst, {0, 0, 1});
  state.move(1, 1);
  EXPECT_EQ(state.load(0), 1);
  EXPECT_EQ(state.load(1), 6);
  state.check_invariants();
}

TEST(WeightedState, SatisfactionUsesWeightLoad) {
  const WeightedInstance inst = small_instance();
  // All on resource 0: load 7. Thresholds 5, 7, 5 -> only user 1 satisfied.
  const WeightedState state = WeightedState::all_on(inst, 0);
  EXPECT_FALSE(state.satisfied(0));
  EXPECT_TRUE(state.satisfied(1));
  EXPECT_FALSE(state.satisfied(2));
  EXPECT_EQ(state.count_satisfied(), 1u);
  EXPECT_EQ(state.satisfied_weight(), 2u);
}

TEST(WeightedState, SatisfiedAfterMoveCountsOwnWeight) {
  const WeightedInstance inst = small_instance();
  const WeightedState state = WeightedState::all_on(inst, 0);
  // User 2 (weight 4, threshold 5) moving to empty resource 1: load 4 <= 5.
  EXPECT_TRUE(weighted_satisfied_after_move(state, 2, 1));
  // User 0 (weight 1) staying put: load stays 7 > 5.
  EXPECT_FALSE(weighted_satisfied_after_move(state, 0, 0));
}

TEST(WeightedEquilibrium, DetectsDeviationAndStuckness) {
  const WeightedInstance inst = small_instance();
  const WeightedState crowded = WeightedState::all_on(inst, 0);
  EXPECT_FALSE(is_weighted_satisfaction_equilibrium(crowded));  // r1 free
  // Balanced: users 0,2 (weight 5) on r0; user 1 (weight 2) on r1.
  const WeightedState balanced(inst, {0, 1, 0});
  EXPECT_TRUE(is_weighted_satisfaction_equilibrium(balanced));
  EXPECT_EQ(balanced.count_satisfied(), 3u);
}

TEST(WeightedGenerator, FeasibleByConstruction) {
  Xoshiro256 rng(5);
  const WeightedInstance inst = make_weighted_feasible(100, 8, 0.3, 4, 1.0, rng);
  EXPECT_EQ(inst.num_users(), 100u);
  // Weights are powers of two within the class range.
  for (UserId u = 0; u < 100; ++u) {
    const std::uint32_t w = inst.weight(u);
    EXPECT_TRUE(w == 1 || w == 2 || w == 4 || w == 8) << w;
  }
  // The LPT packing argument: thresholds are uniform and at least the
  // peak packed load, so a protocol must be able to satisfy everyone.
  WeightedState state = WeightedState::all_on(inst, 0);
  Xoshiro256 run_rng(7);
  WeightedAdmissionControl protocol;
  EngineConfig config;
  config.max_rounds = 100000;
  const EngineResult result = Engine(config).run(protocol, state, run_rng);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_satisfied);
}

class WeightedProtocolKind : public ::testing::TestWithParam<int> {};

TEST_P(WeightedProtocolKind, ConvergesOnFeasibleInstances) {
  Xoshiro256 rng(11);
  const WeightedInstance inst = make_weighted_feasible(200, 16, 0.4, 4, 1.0, rng);
  WeightedState state = WeightedState::random(inst, rng);
  std::unique_ptr<WeightedProtocol> protocol;
  switch (GetParam()) {
    case 0: protocol = std::make_unique<WeightedUniformSampling>(0.5); break;
    case 1: protocol = std::make_unique<WeightedAdmissionControl>(); break;
    default: protocol = std::make_unique<WeightedSequentialBestResponse>(); break;
  }
  EngineConfig config;
  config.max_rounds = 200000;
  const EngineResult result = Engine(config).run(*protocol, state, rng);
  EXPECT_TRUE(result.converged) << protocol->name();
  EXPECT_TRUE(result.all_satisfied) << protocol->name();
  state.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Kinds, WeightedProtocolKind, ::testing::Values(0, 1, 2));

TEST(WeightedAdmission, SatisfiedCountNeverDecreases) {
  Xoshiro256 rng(13);
  const WeightedInstance inst = make_weighted_feasible(150, 10, 0.2, 5, 1.2, rng);
  WeightedState state = WeightedState::random(inst, rng);
  WeightedAdmissionControl protocol;
  Counters counters;
  std::size_t satisfied = state.count_satisfied();
  for (int round = 0; round < 150; ++round) {
    protocol.step(state, rng, counters);
    const std::size_t now = state.count_satisfied();
    ASSERT_GE(now, satisfied) << "round " << round;
    satisfied = now;
  }
}

TEST(WeightedAdmission, AccountingConsistent) {
  Xoshiro256 rng(17);
  const WeightedInstance inst = make_weighted_feasible(100, 8, 0.3, 4, 1.0, rng);
  WeightedState state = WeightedState::all_on(inst, 0);
  WeightedAdmissionControl protocol;
  Counters counters;
  for (int round = 0; round < 50; ++round) protocol.step(state, rng, counters);
  EXPECT_EQ(counters.grants + counters.rejects, counters.migrate_requests);
  EXPECT_EQ(counters.grants, counters.migrations);
}

TEST(WeightedRunner, AlreadyStableIsZeroRounds) {
  const WeightedInstance inst = small_instance();
  WeightedState state(inst, {0, 1, 0});
  Xoshiro256 rng(1);
  WeightedAdmissionControl protocol;
  const EngineResult result = Engine().run(protocol, state, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.final_satisfied_weight, inst.total_weight());
}

TEST(WeightedRunner, MaxRoundsCap) {
  // Infeasible: two weight-4 users, thresholds 5, one resource pair where
  // only one can be alone... all on one resource of capacity 5.
  const WeightedInstance inst({5.0}, {1.0, 1.0}, {4, 4});
  WeightedState state = WeightedState::all_on(inst, 0);
  Xoshiro256 rng(3);
  WeightedUniformSampling protocol(0.5);
  EngineConfig config;
  config.max_rounds = 10;
  const EngineResult result = Engine(config).run(protocol, state, rng);
  // Single resource: nobody can deviate, so the state is stuck-stable.
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.all_satisfied);
}

TEST(WeightedFragmentation, HeavyUserBlockedByLightCrowd) {
  // One resource has room in total but the heavy user cannot fit: weights
  // fragment capacity. Resource capacity 6 (thresholds 6 for q=1): r1 holds
  // weight 3 of light users; heavy user weight 4 cannot join (3+4=7>6) even
  // though its own resource is overloaded.
  const WeightedInstance inst({6.0, 6.0}, {1.0, 1.0, 1.0, 1.0, 1.0},
                              {4, 4, 1, 1, 1});
  // r0: both heavies (load 8 > 6); r1: three lights (load 3).
  WeightedState state(inst, {0, 0, 1, 1, 1});
  EXPECT_FALSE(state.satisfied(0));
  EXPECT_FALSE(weighted_satisfied_after_move(state, 0, 1));
  EXPECT_TRUE(is_weighted_satisfaction_equilibrium(state));
}

}  // namespace
}  // namespace qoslb
