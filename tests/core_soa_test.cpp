// The SoA layout contract (docs/performance.md): State's contiguous
// assignment / load / cached-threshold arrays, the branchless satisfaction
// scans over them, and the end-to-end determinism of the data-oriented round
// hot path.
//
// Two layers:
//   * property tests — thousands of random moves, then every SoA-derived
//     quantity (threshold cache, scan counts, collected unsatisfied sets,
//     the incremental index) must equal a from-scratch scalar recompute;
//   * golden pinning — the engine's final-assignment hash for every sharded
//     protocol x rate model, across thread counts and engine modes, equals
//     the constants captured on the pre-SoA engine. These constants must
//     never change: they prove the rewrite (SoA state, persistent worker
//     pool, prefix-sum shard commit, flat thresholds) is bit-neutral.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/generators.hpp"
#include "core/protocols/registry.hpp"
#include "core/satisfaction_scan.hpp"
#include "core/state.hpp"
#include "net/generators.hpp"
#include "rng/distributions.hpp"

namespace qoslb {
namespace {

std::uint64_t fnv1a_assignment(const State& state) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (UserId u = 0; u < state.num_users(); ++u) {
    std::uint64_t value = state.resource_of(u);
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

/// Scalar from-scratch reference: no caches, no scans, just the definition.
std::size_t scalar_count_satisfied(const State& state) {
  std::size_t satisfied = 0;
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId r = state.resource_of(u);
    if (state.load(r) <= state.instance().threshold(u, r)) ++satisfied;
  }
  return satisfied;
}

std::vector<UserId> scalar_unsatisfied(const State& state) {
  std::vector<UserId> out;
  for (UserId u = 0; u < state.num_users(); ++u) {
    const ResourceId r = state.resource_of(u);
    if (state.load(r) > state.instance().threshold(u, r)) out.push_back(u);
  }
  return out;
}

/// Random walk applying `moves` random (reachable) moves to both states.
void random_walk(State& state, std::size_t moves, Xoshiro256& rng,
                 const std::function<void(std::size_t)>& audit) {
  const Instance& instance = state.instance();
  for (std::size_t k = 0; k < moves; ++k) {
    const UserId u =
        static_cast<UserId>(uniform_u64_below(rng, state.num_users()));
    ResourceId r;
    if (instance.restricted()) {
      const auto reach = instance.reachable(u);
      r = reach[uniform_u64_below(rng, reach.size())];
    } else {
      r = static_cast<ResourceId>(
          uniform_u64_below(rng, state.num_resources()));
    }
    state.move(u, r);
    audit(k);
  }
}

class SoaLayoutTest : public ::testing::TestWithParam<const char*> {};

/// 10k random moves; the threshold cache, the O(1) satisfied counter, the
/// unsatisfied set, and the full-invariant audit must all match a scalar
/// recompute at every checkpoint.
TEST_P(SoaLayoutTest, RandomMovesKeepEveryCacheEqualToScalarRecompute) {
  const std::string model = GetParam();
  Xoshiro256 gen_rng(2024);
  const Instance instance =
      model == "uniform" ? make_uniform_feasible(2000, 50, 0.5, 1.5, gen_rng)
      : model == "matrix" ? make_zipf_rates(2000, 50, 0.2, 1.1, gen_rng)
                          : make_clustered_bipartite(2000, 50, 8, 2, 0.2,
                                                     gen_rng);
  Xoshiro256 rng(7);
  State state = State::random(instance, rng);
  state.enable_satisfaction_tracking();

  random_walk(state, 10000, rng, [&](std::size_t k) {
    EXPECT_EQ(state.count_satisfied(), scalar_count_satisfied(state));
    if (k % 500 != 0) return;
    state.check_invariants();  // audits the threshold cache and the index
    std::vector<UserId> tracked = state.unsatisfied_view();
    std::sort(tracked.begin(), tracked.end());
    EXPECT_EQ(tracked, scalar_unsatisfied(state));
  });
}

/// The branchless scan helpers agree with the scalar definition — over the
/// dense range and over random (ascending) user subsets, including sizes
/// around the SIMD width.
TEST_P(SoaLayoutTest, SatisfactionScansMatchScalarDefinition) {
  const std::string model = GetParam();
  Xoshiro256 gen_rng(99);
  const Instance instance =
      model == "uniform" ? make_uniform_feasible(1000, 40, 0.5, 1.5, gen_rng)
      : model == "matrix" ? make_zipf_rates(1000, 40, 0.2, 1.1, gen_rng)
                          : make_clustered_bipartite(1000, 40, 8, 2, 0.2,
                                                     gen_rng);
  Xoshiro256 rng(13);
  State state = State::random(instance, rng);

  random_walk(state, 2000, rng, [](std::size_t) {});

  const ResourceId* assignment = state.assignment().data();
  const int* thresholds = state.current_thresholds().data();
  const int* loads = state.loads().data();
  const std::size_t n = state.num_users();

  EXPECT_EQ(count_satisfied_dense(assignment, thresholds, loads, n),
            scalar_count_satisfied(state));

  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{64}, std::size_t{333}, n}) {
    // Ascending random subset (the engine always hands sorted user lists).
    std::vector<UserId> users;
    for (UserId u = 0; u < n && users.size() < size; ++u)
      if (size == n || uniform_u64_below(rng, 2) == 0) users.push_back(u);

    std::size_t scalar_satisfied = 0;
    std::vector<UserId> scalar_unsat;
    for (const UserId u : users) {
      if (loads[assignment[u]] <= thresholds[u]) ++scalar_satisfied;
      else scalar_unsat.push_back(u);
    }

    EXPECT_EQ(count_satisfied_scan(assignment, thresholds, loads,
                                   users.data(), users.size()),
              scalar_satisfied);
    std::vector<UserId> collected(users.size() + 1, 0xDEADBEEF);
    const std::size_t written =
        collect_unsatisfied(assignment, thresholds, loads, users.data(),
                            users.size(), collected.data());
    ASSERT_EQ(written, scalar_unsat.size());
    collected.resize(written);
    EXPECT_EQ(collected, scalar_unsat);  // exact ascending order
  }
}

INSTANTIATE_TEST_SUITE_P(AllRateModels, SoaLayoutTest,
                         ::testing::Values("uniform", "matrix", "bipartite"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

/// The flat-threshold fast path (identical capacities x uniform rates) is
/// bit-identical to the general arithmetic.
TEST(FlatThresholds, TableMatchesGeneralArithmetic) {
  std::vector<double> requirements;
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i)
    requirements.push_back(uniform_real(rng, 0.01, 2.0));
  const Instance flat = Instance::identical(16, 3.7, requirements);
  ASSERT_TRUE(flat.flat_thresholds_available());

  // Same capacities spelled as a vector with one perturbed entry: not
  // identical, so the general path runs. Restores the perturbed entry's
  // value for the comparison columns that share capacity 3.7.
  std::vector<double> capacities(16, 3.7);
  capacities[7] = 3.8;
  const Instance general(capacities, requirements);
  ASSERT_FALSE(general.flat_thresholds_available());

  for (UserId u = 0; u < requirements.size(); ++u) {
    for (ResourceId r = 0; r < 16; ++r) {
      if (r == 7) continue;
      EXPECT_EQ(flat.threshold(u, r), general.threshold(u, r))
          << "u=" << u << " r=" << r;
    }
    EXPECT_EQ(flat.flat_thresholds()[u], flat.threshold(u, 0));
  }
}

// ---------------------------------------------------------------------------
// Golden pinning: constants captured from the pre-SoA engine (n=4096, m=64,
// 12 rounds, generator and run seeds 0xC0FFEE, torus(8,8) neighborhoods).
// Every (protocol, model) cell must reproduce its constant for every thread
// count and engine mode.

struct GoldenCase {
  const char* protocol;
  const char* model;
  std::uint64_t hash;
};

constexpr GoldenCase kGolden[] = {
    {"uniform", "uniform", 5279639549658564607ULL},
    {"uniform", "matrix", 6353885293091060871ULL},
    {"uniform", "bipartite", 16330120590967387758ULL},
    {"adaptive", "uniform", 14621562862186132828ULL},
    {"adaptive", "matrix", 14621562862186132828ULL},
    {"adaptive", "bipartite", 6780310642695230133ULL},
    {"admission", "uniform", 14621562862186132828ULL},
    {"admission", "matrix", 14621562862186132828ULL},
    {"admission", "bipartite", 6684483509147484388ULL},
    {"nbr-uniform", "uniform", 276879360151485623ULL},
    {"nbr-uniform", "matrix", 16069515457872339847ULL},
    {"nbr-uniform", "bipartite", 18085179102331136945ULL},
    {"nbr-admission", "uniform", 2515580048525765050ULL},
    {"nbr-admission", "matrix", 1125576434327794789ULL},
    {"nbr-admission", "bipartite", 7971635027671204033ULL},
    {"berenbrink", "uniform", 782345824892656916ULL},
    {"berenbrink", "matrix", 782345824892656916ULL},
    {"berenbrink", "bipartite", 13736654091904881099ULL},
};

TEST(GoldenHashes, EveryProtocolModelThreadsModeCellMatchesPreSoaCapture) {
  const std::size_t n = 4096, m = 64;
  // One sequential generator stream builds the three models, exactly as the
  // capture harness did — order matters.
  Xoshiro256 gen_rng(0xC0FFEE);
  struct Model {
    std::string name;
    Instance instance;
  };
  std::vector<Model> models;
  models.push_back({"uniform", make_uniform_feasible(n, m, 0.5, 1.5, gen_rng)});
  models.push_back({"matrix", make_zipf_rates(n, m, 0.2, 1.1, gen_rng)});
  models.push_back(
      {"bipartite", make_clustered_bipartite(n, m, 8, 2, 0.2, gen_rng)});
  const Graph graph = make_torus(8, 8);

  for (const GoldenCase& golden : kGolden) {
    const Model* model = nullptr;
    for (const Model& candidate : models)
      if (candidate.name == golden.model) model = &candidate;
    ASSERT_NE(model, nullptr);

    ProtocolSpec spec;
    spec.kind = golden.protocol;
    spec.lambda = 0.5;
    spec.graph = &graph;
    const auto protocol = make_protocol(spec);

    std::vector<ResourceId> start(n, 0);
    if (model->instance.restricted())
      for (UserId u = 0; u < n; ++u)
        start[u] = model->instance.reachable(u).front();

    for (const std::size_t threads : {1, 2, 4}) {
      for (const EngineMode mode : {EngineMode::kDense, EngineMode::kActive}) {
        State state(model->instance, std::vector<ResourceId>(start));
        EngineConfig config;
        config.max_rounds = 12;
        config.threads = threads;
        config.mode = mode;
        Xoshiro256 rng(0xC0FFEE);
        Engine(config).run(*protocol, state, rng);
        protocol->reset();
        EXPECT_EQ(fnv1a_assignment(state), golden.hash)
            << golden.protocol << " x " << golden.model
            << " threads=" << threads << " mode="
            << (mode == EngineMode::kDense ? "dense" : "active");
      }
    }
  }
}

}  // namespace
}  // namespace qoslb
