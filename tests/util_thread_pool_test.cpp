#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qoslb {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionPropagatesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace qoslb
